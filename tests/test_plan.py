"""Adaptive campaign planner: strata, estimator, driver, parity.

Three guarantees are pinned here:

* ``--adaptive off`` (the default) is canonically byte-identical to
  the seed behaviour at any jobs/batch split -- no stratum keys, no
  sidecar, no drift.
* The stratified estimator is unbiased (equals the pooled mean under
  uniform allocation; importance weights sum to 1 per stratum).
* The corrected margin reporting matches the hand-computed Leveugle
  value exactly on a fixed fixture log.
"""

import json
import math
from pathlib import Path

import pytest

from repro.analysis.statistics import (observed_margin,
                                       per_structure_margins,
                                       required_injections,
                                       wilson_halfwidth, wilson_interval)
from repro.dist.protocol import canonical_log_text
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.parser import load_records
from repro.faults.targets import Structure
from repro.plan import plan_path_for
from repro.plan.estimator import (MIN_STRATUM_RUNS, StratifiedEstimate,
                                  StratumStats)

FIXTURE = Path(__file__).parent / "data" / "golden_transient_vectoradd.jsonl"


def make_config(**overrides):
    kwargs = dict(benchmark="vectoradd", card="RTX2060",
                  structures=(Structure.REGISTER_FILE,),
                  runs_per_structure=24, seed=7)
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


class TestWilsonInterval:
    def test_zero_failures_is_not_degenerate(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == 0.0 and 0.0 < hi < 1.0

    def test_all_failures_is_not_degenerate(self):
        lo, hi = wilson_interval(10, 10)
        assert 0.0 < lo < 1.0 and hi == 1.0

    def test_contains_the_observed_rate(self):
        lo, hi = wilson_interval(3, 10)
        assert lo < 0.3 < hi

    def test_halfwidth_shrinks_with_n(self):
        assert wilson_halfwidth(5, 10) > wilson_halfwidth(50, 100) \
            > wilson_halfwidth(500, 1000)

    def test_exhaustive_sampling_collapses(self):
        assert wilson_interval(3, 10, population=10) == (0.3, 0.3)

    def test_finite_population_tightens(self):
        assert wilson_halfwidth(3, 10, population=20) \
            < wilson_halfwidth(3, 10, population=10**9)

    def test_invalid_successes(self):
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    def test_no_runs_is_total_uncertainty(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)


def _estimate(spec, population=10000.0):
    """Build a StratifiedEstimate from {key: (cand, exec, fail)}."""
    est = StratifiedEstimate(kernel="k", structure="register_file",
                             population=population)
    for key, (candidates, executed, failures) in spec.items():
        est.strata[key] = StratumStats(key=key, candidates=candidates,
                                       executed=executed,
                                       failures=failures)
    return est


class TestStratifiedEstimator:
    def test_uniform_allocation_equals_pooled_mean(self):
        # equal sampling fractions (half of each stratum): the
        # stratified estimate must equal the pooled per-run mean
        est = _estimate({"a": (10, 5, 2), "b": (30, 15, 6)})
        pooled = (2 + 6) / (5 + 15)
        assert est.failure_ratio() == pytest.approx(pooled)

    def test_importance_weights_sum_to_one_per_stratum(self):
        est = _estimate({"a": (10, 3, 1), "b": (30, 9, 0),
                         "c": (60, 2, 2)})
        # sum over a stratum's runs of W_s/n_s is W_s ...
        for key, stats in est.strata.items():
            total = est.run_weight(key) * stats.executed
            assert total == pytest.approx(
                stats.weight(est.pool_total))
        # ... and the weights themselves sum to 1 over the pool
        assert sum(s.weight(est.pool_total)
                   for s in est.strata.values()) == pytest.approx(1.0)

    def test_skewed_allocation_stays_unbiased_in_form(self):
        # oversampling stratum b does not change its weight, only
        # its per-run importance weight
        even = _estimate({"a": (50, 5, 0), "b": (50, 5, 5)})
        skew = _estimate({"a": (50, 5, 0), "b": (50, 45, 45)})
        assert even.failure_ratio() == pytest.approx(0.5)
        assert skew.failure_ratio() == pytest.approx(0.5)
        assert skew.run_weight("b") < even.run_weight("b")

    def test_dead_stratum_costs_no_runs_but_is_not_free_certainty(self):
        from repro.analysis.statistics import wilson_halfwidth
        est = _estimate({"dead": (80, 0, 0), "live": (20, 10, 5)})
        dead = est.strata["dead"]
        assert dead.proven_dead
        assert dead.p_hat() == 0.0
        assert est.failure_ratio() == pytest.approx(0.2 * 0.5)
        # the dead margin is the Wilson interval of 0 failures in the
        # 80 classified draws -- nonzero, so 8 dead draws can never
        # certify a whole fault space at a tight target
        margin = dead.margin(est.pool_total, est.population)
        assert margin == wilson_halfwidth(0, 80,
                                          population=0.8 * 10000.0)
        assert margin > 0.0
        assert dead.met(est.pool_total, est.population, 0.1)
        assert not dead.met(est.pool_total, est.population, 0.01)
        # more classification draws tighten it at zero run cost
        dead.extra_candidates = 2000
        assert dead.met(est.pool_total, est.population, 0.01)
        assert dead.executed == 0

    def test_met_requires_minimum_runs(self):
        est = _estimate({"live": (10, MIN_STRATUM_RUNS - 1, 0)})
        stats = est.strata["live"]
        assert not stats.met(est.pool_total, est.population, 1.0)
        stats.executed = MIN_STRATUM_RUNS
        assert stats.met(est.pool_total, est.population, 1.0)

    def test_small_strata_get_looser_targets(self):
        est = _estimate({"dead": (80, 0, 0), "a": (16, 0, 0),
                         "b": (4, 0, 0)})
        total = est.pool_total
        assert est.strata["b"].target(total, 0.1) \
            > est.strata["a"].target(total, 0.1) \
            > est.strata["dead"].target(total, 0.1) > 0.1

    def test_scaled_targets_bound_combined_margin(self):
        # once no stratum is unmet, sum (W_s hw_s)^2 <= e^2
        est = _estimate({"dead": (800, 0, 0), "a": (120, 60, 15),
                         "b": (80, 40, 40)})
        error = 0.2
        assert not est.unmet(error)
        assert est.combined_margin() <= error

    def test_run_weight_none_before_any_run(self):
        est = _estimate({"a": (10, 0, 0)})
        assert est.run_weight("a") is None

    def test_to_dict_is_json_and_consistent(self):
        est = _estimate({"dead": (6, 0, 0), "a": (4, 4, 1)})
        doc = json.loads(json.dumps(est.to_dict(error_target=0.1)))
        assert doc["pool_candidates"] == 10
        strata = doc["strata"]
        assert strata["dead"]["proven_dead"] is True
        assert strata["a"]["run_weight"] == pytest.approx(0.4 / 4)
        assert sum(s["weight"] for s in strata.values()) \
            == pytest.approx(1.0)


class TestFixtureMargin:
    """The corrected margin line vs the hand-computed Leveugle value."""

    def _tallies(self, structure="register_file"):
        from repro.faults.classify import FaultEffect
        records = load_records(FIXTURE)
        mine = [r for r in records if r["structure"] == structure]
        failures = sum(FaultEffect(r["effect"]).is_failure
                       for r in mine)
        return records, len(mine), failures

    def test_fixture_margin_exact(self):
        # register_file in the fixture: 4 runs, 1 Crash; population
        # 15 regs x 32 bits x 438 cycles = 210,240.  Inverse Leveugle
        # at the observed p-hat = 1/4:
        _, n, failures = self._tallies()
        assert (n, failures) == (4, 1)
        population = 15 * 32 * 438
        z = 2.5758  # 99% two-sided
        p = failures / n
        fpc = (population - n) / (population - 1)
        hand = z * math.sqrt(p * (1 - p) * fpc / n)
        assert observed_margin(n, failures, population=population) == hand
        assert hand == pytest.approx(0.557673079873576, abs=1e-12)

    def test_per_structure_margins_match_fixture(self):
        records, n, failures = self._tallies()
        campaign = Campaign(make_config(runs_per_structure=12))
        result = campaign.aggregate(records)
        margins = per_structure_margins(result)
        entry = margins[("vectorAdd", Structure.REGISTER_FILE)]
        assert entry["runs"] == n
        assert entry["failures"] == failures
        assert entry["population"] == 15 * 32 * 438
        assert entry["margin"] == observed_margin(
            n, failures, population=entry["population"])

    def test_margin_uses_observed_rate_not_worst_case(self):
        # the old line claimed the planning-time p = 0.5 margin; the
        # corrected one is tighter at the observed p-hat = 1/4
        from repro.analysis.statistics import margin_of_error
        _, n, failures = self._tallies()
        population = 15 * 32 * 438
        assert observed_margin(n, failures, population=population) \
            < margin_of_error(n, population=population)

    def test_degenerate_structures_use_wilson_centre(self):
        # shared_mem and l2_cache observe 0 failures in 4 runs; the
        # margin must not collapse to 0 (Wilson-centre substitution)
        for structure in ("shared_mem", "l2_cache"):
            _, n, failures = self._tallies(structure)
            assert (n, failures) == (4, 0)
            margin = observed_margin(n, failures, population=10**6)
            assert 0.0 < margin < 1.0


class TestAdaptiveOffParity:
    """--adaptive off must stay canonically byte-identical."""

    def _canonical(self, tmp_path, name, jobs=1, **overrides):
        log = tmp_path / f"{name}.jsonl"
        config = make_config(runs_per_structure=6, log_path=log,
                             **overrides)
        Campaign(config).run(jobs=jobs)
        return canonical_log_text(load_records(log)), log

    def test_byte_identical_across_jobs_and_batch(self, tmp_path):
        base, _ = self._canonical(tmp_path, "serial")
        para, _ = self._canonical(tmp_path, "parallel", jobs=3)
        batched, _ = self._canonical(tmp_path, "batched", jobs=2,
                                     batch=3)
        assert base == para == batched

    def test_no_stratum_keys_or_sidecar_by_default(self, tmp_path):
        _, log = self._canonical(tmp_path, "plain")
        records = load_records(log)
        assert records and all("stratum" not in r for r in records)
        assert not plan_path_for(log).exists()


class TestAdaptiveDriver:
    def _run(self, tmp_path, name="adaptive", **overrides):
        log = tmp_path / f"{name}.jsonl"
        kwargs = dict(adaptive="on", error_target=0.1,
                      runs_per_structure=200, seed=3, log_path=log)
        kwargs.update(overrides)
        campaign = Campaign(make_config(**kwargs))
        result = campaign.run()
        return campaign, result, log

    def test_reaches_target_with_fewer_runs_than_uniform(self, tmp_path):
        campaign, _, log = self._run(tmp_path)
        doc = json.loads(plan_path_for(log).read_text())
        assert doc["all_met"] is True
        uniform = required_injections(doc["groups"][0]["population"],
                                      error=0.1)
        assert doc["uniform_runs_total"] == uniform
        assert doc["executed"] < uniform  # measurably fewer
        assert doc["runs_saved"] == uniform - doc["executed"]

    def test_records_carry_strata_and_weights_are_consistent(
            self, tmp_path):
        campaign, result, log = self._run(tmp_path)
        doc = json.loads(plan_path_for(log).read_text())
        strata = doc["groups"][0]["strata"]
        assert sum(s["weight"] for s in strata.values()) \
            == pytest.approx(1.0, abs=1e-5)
        executed = {}
        for record in result.records:
            assert record["stratum"] in strata
            executed[record["stratum"]] = \
                executed.get(record["stratum"], 0) + 1
        assert executed  # live strata actually ran
        for key, n in executed.items():
            info = strata[key]
            assert info["executed"] == n
            # per-run importance weights sum back to the stratum weight
            assert info["run_weight"] * n \
                == pytest.approx(info["weight"], abs=1e-5)

    def test_adaptive_is_deterministic(self, tmp_path):
        _, _, log_a = self._run(tmp_path, "a")
        _, _, log_b = self._run(tmp_path, "b")
        doc_a = json.loads(plan_path_for(log_a).read_text())
        doc_b = json.loads(plan_path_for(log_b).read_text())
        assert doc_a == doc_b
        assert canonical_log_text(load_records(log_a)) \
            == canonical_log_text(load_records(log_b))

    def test_last_plan_summary_renders(self, tmp_path):
        campaign, _, _ = self._run(tmp_path)
        assert campaign.last_plan is not None
        text = campaign.last_plan.summary()
        assert "error target +/-10.0%" in text
        assert "vectorAdd/register_file" in text

    def test_budget_caps_spending(self, tmp_path):
        campaign, result, log = self._run(tmp_path, "tight",
                                          runs_per_structure=8,
                                          error_target=0.02)
        doc = json.loads(plan_path_for(log).read_text())
        assert doc["executed"] <= 8
        assert doc["groups"][0]["budget_exhausted"] is True
        assert doc["all_met"] is False

    def test_metrics_sidecar_gains_adaptive_block(self, tmp_path):
        campaign, _, _ = self._run(tmp_path, "metrics", metrics=True)
        assert campaign.last_metrics["adaptive"]["adaptive"] == "on"
        assert campaign.last_metrics["adaptive"]["groups"]

    def test_estimate_tracks_dead_mass(self, tmp_path):
        campaign, _, log = self._run(tmp_path)
        doc = json.loads(plan_path_for(log).read_text())
        group = doc["groups"][0]
        dead = group["strata"].get("dead")
        assert dead is not None and dead["proven_dead"]
        assert dead["executed"] == 0
        # the stratified FR discounts the proven-dead mass, so it
        # cannot exceed the live fraction of the pool
        assert group["failure_ratio"] <= 1.0 - dead["weight"] + 1e-9


class TestAdaptiveConfig:
    def test_remote_backend_rejected(self):
        with pytest.raises(ValueError):
            make_config(adaptive="on", backend="remote",
                        backend_url="http://localhost:1")

    def test_error_target_validated(self):
        with pytest.raises(ValueError):
            make_config(adaptive="on", error_target=0.0)
        with pytest.raises(ValueError):
            make_config(adaptive="on", error_target=1.0)

    def test_adaptive_value_validated(self):
        with pytest.raises(ValueError):
            make_config(adaptive="maybe")

    def test_config_file_roundtrip(self):
        from repro.faults.config_file import dump_config, parse_config_text
        config = make_config(adaptive="on", error_target=0.05)
        text = dump_config(config)
        assert "-gpufi_adaptive 1" in text
        assert "-gpufi_error_target 0.05" in text
        parsed = parse_config_text(text)
        assert parsed.adaptive == "on"
        assert parsed.error_target == 0.05

    def test_config_file_default_off(self):
        from repro.faults.config_file import dump_config
        text = dump_config(make_config())
        assert "adaptive" not in text

    def test_submit_rejects_adaptive(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="adaptive"):
            main(["submit", "--connect", "http://localhost:1",
                  "--benchmark", "vectoradd", "--adaptive"])
