"""The L1 constant cache extension (the paper's future work).

gpuFI-4 could not inject the constant cache because GPGPU-Sim keeps no
link between its lines and the data (section IV.C.1); our substrate
models it directly: LDC reads go through a per-core 64-byte-line
cache, and `Structure.L1C_CACHE` is injectable.
"""

import numpy as np
import pytest

from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.injector import Injector
from repro.faults.mask import FaultMask
from repro.faults.targets import CHIP_STRUCTURES, Structure, chip_bits
from repro.sim.cards import gtx_titan, rtx_2060
from repro.sim.device import Device, RunOptions
from repro.sim.kernel import Kernel

PARAM_SPIN = Kernel("param_spin", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    MOV R11, 0
loop:
    IADD R11, R11, 1
    ISETP.LT.AND P0, PT, R11, 200, PT
@P0 BRA loop
    LDC R8, c[0x0]             ; output pointer, read AFTER the spin
    LDC R10, c[0x4]            ; payload parameter
    IADD R9, R8, R3
    STG [R9], R10
    EXIT
""", num_params=2)


class TestConstCacheModel:
    def test_ldc_goes_through_l1c(self):
        dev = Device("RTX2060")
        out = dev.malloc(128)
        dev.launch(PARAM_SPIN, grid=1, block=32, params=[out, 7])
        l1c = dev.gpu.cores[0].l1c
        assert l1c.stats.accesses == 2
        assert l1c.stats.misses == 1  # both params share one 64B line
        assert l1c.stats.hits == 1

    def test_params_cached_across_warps(self):
        dev = Device("RTX2060")
        out = dev.malloc(4 * 128)
        dev.launch(PARAM_SPIN, grid=1, block=128, params=[out, 7])
        l1c = dev.gpu.cores[0].l1c
        assert l1c.stats.misses == 1  # warps 2..4 hit

    def test_geometry(self):
        card = rtx_2060()
        assert card.l1c.line_bytes == 64
        assert card.l1c.num_lines == 1024
        # the 64B-line tag model reproduces the paper's 2.08 MB chip size
        mb = card.num_sms * card.l1c.injectable_bits(57) / 8 / 1024 / 1024
        assert mb == pytest.approx(2.08, abs=0.01)

    def test_not_in_chip_avf(self):
        assert Structure.L1C_CACHE not in CHIP_STRUCTURES
        assert not Structure.L1C_CACHE.on_chip
        assert chip_bits(Structure.L1C_CACHE, rtx_2060()) > 0


class TestConstCacheInjection:
    def _run(self, bit, cycle=50):
        mask = FaultMask(structure=Structure.L1C_CACHE, cycle=cycle,
                         entry_index=0, bit_offsets=(bit,), seed=1)
        injector = Injector([mask])
        dev = Device("RTX2060", RunOptions(injector=injector))
        out = dev.malloc(128)
        dev.launch(PARAM_SPIN, grid=1, block=32, params=[out, 7])
        return dev.read_array(out, (32,), np.uint32), injector

    def test_line_zero_holds_params(self):
        # line index 0 of the constant cache is where the parameter
        # line lands (set 0, way depends on fill order)
        dev = Device("RTX2060")
        out = dev.malloc(128)
        dev.launch(PARAM_SPIN, grid=1, block=32, params=[out, 7])
        line = dev.gpu.cores[0].l1c.line_by_index(0)
        assert line.valid
        assert int(line.data[:4].view("<u4")[0]) == out

    def test_data_flip_corrupts_param(self):
        # bit 57+32 = first bit of the second parameter word: the spin
        # ensures injection lands between fill and the LDC reads...
        # except LDC only fills the line when first executed, which is
        # *after* the spin -- so target a mid-loop cycle and verify the
        # line was invalid (masked), then target post-fill.
        out_vals, injector = self._run(bit=57 + 32, cycle=10**9 - 1)
        assert (out_vals == 7).all()  # never applied / masked

    def test_injection_record(self):
        _, injector = self._run(bit=3, cycle=50)
        record = injector.log[0]
        assert record["target"] == "l1"
        assert record["flips"][0]["cache"].startswith("L1C.")

    def test_resident_line_flip_observed_by_later_ldc(self):
        kernel = Kernel("param_reread", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]             ; fills the parameter line early
    MOV R11, 0
loop:
    IADD R11, R11, 1
    ISETP.LT.AND P0, PT, R11, 200, PT
@P0 BRA loop
    LDC R10, c[0x4]            ; re-read: hits the (corrupted) line
    IADD R9, R8, R3
    STG [R9], R10
    EXIT
""", num_params=2)
        # bit 57 + 32 = lowest bit of the second parameter word
        mask = FaultMask(structure=Structure.L1C_CACHE, cycle=100,
                         entry_index=0, bit_offsets=(57 + 32,), seed=1)
        dev = Device("RTX2060", RunOptions(injector=Injector([mask])))
        out = dev.malloc(128)
        dev.launch(kernel, grid=1, block=32, params=[out, 8])
        values = dev.read_array(out, (32,), np.uint32)
        assert (values == 9).all()  # 8 with bit 0 flipped

    def test_campaign_over_l1c(self):
        result = Campaign(CampaignConfig(
            benchmark="vectoradd", card="RTX2060",
            structures=(Structure.L1C_CACHE,),
            runs_per_structure=6, seed=9)).run()
        assert result.runs("vectorAdd", Structure.L1C_CACHE) == 6

    def test_titan_l1c_geometry_divides(self):
        card = gtx_titan()
        assert card.l1c.num_lines == 192
