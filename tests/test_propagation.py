"""Fault-propagation tracing: site fates, consumer chains, divergence
localization, explain-run, and the bit-identical-classification bar."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.config_file import dump_config, parse_config_text
from repro.faults.injector import Injector
from repro.faults.mask import FaultMask
from repro.faults.parser import count_unapplied, load_records
from repro.faults.targets import Structure
from repro.obs.propagation import (PropagationTracer, explain_record,
                                   prescreen_propagation,
                                   sites_from_prescreen,
                                   summarize_propagation,
                                   synthesized_propagation)


# -- fakes for unit-level tracer tests ------------------------------------

class FakeKernel:
    name = "fake_kernel"


class FakeLaunch:
    kernel = FakeKernel()


class FakeCta:
    launch = FakeLaunch()


class FakeWarp:
    def __init__(self, age=5, lanes=32):
        self.age = age
        self.cta = FakeCta()
        self._live = np.arange(lanes)

    def live_lanes(self):
        return self._live


class FakeInst:
    def __init__(self, srcs=(), dsts=(), pc=10, text="OP"):
        self._sets = (tuple(srcs), tuple(dsts), (), ())
        self.pc = pc
        self.text = text

    def scoreboard_sets(self):
        return self._sets

    def __str__(self):
        return self.text


def full_mask(lanes=32):
    return np.ones(lanes, dtype=bool)


class TestRegisterFates:
    def test_read_consumes(self):
        tracer = PropagationTracer(injection_cycle=100)
        warp = FakeWarp()
        tracer.on_register_site(0, warp.age, 7, [0, 1])
        assert tracer.armed
        tracer.on_issue(0, warp, FakeInst(srcs=(7,), dsts=(9,), pc=12,
                                          text="IADD R9, R7, R3"),
                        full_mask(), now=140)
        site = tracer.finalize()["sites"][0]
        assert site["fate"] == "consumed"
        assert site["fate_cycle"] == 140
        assert site["pc"] == 12
        assert site["kernel"] == "fake_kernel"
        chain = tracer.finalize()["consumers"]
        assert chain[0]["inst"] == "IADD R9, R7, R3"

    def test_full_overwrite_before_read(self):
        tracer = PropagationTracer(injection_cycle=100)
        warp = FakeWarp()
        tracer.on_register_site(0, warp.age, 7, [3, 4])
        tracer.on_issue(0, warp, FakeInst(dsts=(7,)), full_mask(), now=120)
        site = tracer.finalize()["sites"][0]
        assert site["fate"] == "overwritten"
        assert site["fate_cycle"] == 120
        # later reads of the clean register must not consume
        tracer.on_issue(0, warp, FakeInst(srcs=(7,)), full_mask(), now=130)
        assert tracer.finalize()["sites"][0]["fate"] == "overwritten"
        assert not tracer.finalize()["consumers"]

    def test_partial_overwrite_then_read_consumes(self):
        tracer = PropagationTracer(injection_cycle=100)
        warp = FakeWarp()
        tracer.on_register_site(0, warp.age, 7, [0, 1])
        partial = np.zeros(32, dtype=bool)
        partial[0] = True  # overwrites lane 0 only; lane 1 still dirty
        tracer.on_issue(0, warp, FakeInst(dsts=(7,)), partial, now=120)
        assert tracer.finalize()["sites"][0]["fate"] == "never_touched"
        tracer.on_issue(0, warp, FakeInst(srcs=(7,)), full_mask(), now=130)
        assert tracer.finalize()["sites"][0]["fate"] == "consumed"

    def test_untouched_site_stays_never_touched(self):
        tracer = PropagationTracer(injection_cycle=100)
        warp = FakeWarp()
        tracer.on_register_site(0, warp.age, 7, [0])
        tracer.on_issue(0, warp, FakeInst(srcs=(3,), dsts=(4,)),
                        full_mask(), now=110)
        site = tracer.finalize()["sites"][0]
        assert site["fate"] == "never_touched"
        assert site["fate_cycle"] is None

    def test_other_warp_not_confused(self):
        tracer = PropagationTracer(injection_cycle=100)
        tracer.on_register_site(0, 5, 7, [0])
        other = FakeWarp(age=6)
        tracer.on_issue(0, other, FakeInst(srcs=(7,)), full_mask(), now=110)
        assert tracer.finalize()["sites"][0]["fate"] == "never_touched"


class TestTaintChain:
    def test_derived_values_extend_chain(self):
        tracer = PropagationTracer(injection_cycle=100)
        warp = FakeWarp()
        tracer.on_register_site(0, warp.age, 7, [0])
        tracer.on_issue(0, warp, FakeInst(srcs=(7,), dsts=(9,), text="A"),
                        full_mask(), now=110)
        # R9 is now tainted: reading it chains even though R7 is gone
        tracer.on_issue(0, warp, FakeInst(srcs=(9,), dsts=(11,), text="B"),
                        full_mask(), now=120)
        chain = [c["inst"] for c in tracer.finalize()["consumers"]]
        assert chain == ["A", "B"]

    def test_clean_full_write_launders(self):
        tracer = PropagationTracer(injection_cycle=100)
        warp = FakeWarp()
        tracer.on_register_site(0, warp.age, 7, [0])
        tracer.on_issue(0, warp, FakeInst(srcs=(7,), dsts=(9,), text="A"),
                        full_mask(), now=110)
        # clean full-coverage write to R9: taint is laundered
        tracer.on_issue(0, warp, FakeInst(srcs=(3,), dsts=(9,), text="MOV"),
                        full_mask(), now=120)
        tracer.on_issue(0, warp, FakeInst(srcs=(9,), dsts=(11,), text="C"),
                        full_mask(), now=130)
        chain = [c["inst"] for c in tracer.finalize()["consumers"]]
        assert chain == ["A"]

    def test_chain_is_bounded(self):
        tracer = PropagationTracer(injection_cycle=100, max_consumers=2)
        warp = FakeWarp()
        tracer.on_register_site(0, warp.age, 7, [0])
        tracer.on_issue(0, warp, FakeInst(srcs=(7,), dsts=(9,)),
                        full_mask(), now=110)
        for i in range(5):
            tracer.on_issue(0, warp, FakeInst(srcs=(9,), dsts=(9,)),
                            full_mask(), now=120 + i)
        record = tracer.finalize()
        assert len(record["consumers"]) == 2
        assert record["consumers_dropped"] == 4


class TestDivergenceObserver:
    def test_window_brackets_first_mismatch(self):
        tracer = PropagationTracer(injection_cycle=100)
        tracer.on_digest_check(150, True)
        tracer.on_digest_check(200, False)
        tracer.on_digest_check(250, False)
        record = tracer.finalize()
        assert record["diverged_window"] == [150, 200]
        assert record["digest_checks"] == 3

    def test_no_checkpoint_after_injection(self):
        tracer = PropagationTracer(injection_cycle=100)
        record = tracer.finalize()
        assert record["diverged_window"] is None
        assert record["digest_checks"] == 0

    def test_converged_run_records_cycle(self):
        tracer = PropagationTracer(injection_cycle=100)
        tracer.on_digest_check(150, True)
        record = tracer.finalize()
        assert record["converged_at"] == 150
        assert record["diverged_window"] is None

    def test_window_floor_is_injection_cycle(self):
        tracer = PropagationTracer(injection_cycle=100)
        tracer.on_digest_check(150, False)
        assert tracer.finalize()["diverged_window"] == [100, 150]

    def test_host_divergence_flag(self):
        tracer = PropagationTracer(injection_cycle=100)
        tracer.on_host_divergence()
        assert tracer.finalize()["host_read_diverged"] is True


class TestPrescreenShaping:
    def test_register_target(self):
        sites = sites_from_prescreen(
            "register_file", {"core": 2, "warp_age": 3, "register": 7},
            "overwritten")
        assert sites == [{"kind": "register", "core": 2, "warp_age": 3,
                          "register": 7, "lanes": [], "fate": "overwritten",
                          "fate_cycle": None, "pc": None, "kernel": None,
                          "events": []}]

    def test_shared_target(self):
        sites = sites_from_prescreen(
            "shared_mem", {"blocks": [{"core": 0, "cta": [1, 0, 0],
                                       "word": 5}]}, "never_touched")
        assert sites[0]["kind"] == "shared"
        assert sites[0]["cta"] == [1, 0, 0]

    def test_local_target(self):
        sites = sites_from_prescreen(
            "local_mem", {"core": 0, "warp_age": 1, "word": 9,
                          "lanes": [3]}, "overwritten")
        assert sites[0]["kind"] == "local"
        assert sites[0]["lanes"] == [3]

    def test_cache_target(self):
        sites = sites_from_prescreen(
            "l1d_cache", {"caches": ["L1D.0", "L1D.1"], "line": 4},
            "evicted")
        assert [s["cache"] for s in sites] == ["L1D.0", "L1D.1"]
        assert all(s["fate"] == "evicted" for s in sites)

    def test_empty_target(self):
        assert sites_from_prescreen("register_file", {}, "x") == []

    def test_prescreen_record_roundtrip(self):
        payload = json.dumps({"cycle": 42, "sites": sites_from_prescreen(
            "register_file", {"core": 0, "warp_age": 0, "register": 1},
            "overwritten")}, sort_keys=True)
        record = prescreen_propagation(payload)
        assert record["source"] == "prescreen"
        assert record["injection_cycle"] == 42
        assert record["sites"][0]["fate"] == "overwritten"
        # empty payload (no plan-time fate available) degrades
        assert prescreen_propagation("")["sites"] == []


def strip_propagation(records):
    return [{k: v for k, v in r.items() if k != "propagation"}
            for r in records]


def make_config(**overrides):
    kwargs = dict(benchmark="vectoradd", card="RTX2060",
                  structures=(Structure.REGISTER_FILE,),
                  runs_per_structure=5, seed=11)
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


class TestCampaignParity:
    """The acceptance bar: classification is bit-identical with
    --propagation on/off, at any --jobs, with checkpointing and
    --early-stop full."""

    def _run(self, tmp_path, tag, jobs, propagation):
        config = make_config(log_path=tmp_path / f"{tag}.jsonl",
                             checkpoint_dir=tmp_path / "ckpt",
                             early_stop="full", propagation=propagation)
        return Campaign(config).run(jobs=jobs)

    def test_bit_identical_classification(self, tmp_path):
        base = self._run(tmp_path, "off", jobs=1, propagation=False)
        on1 = self._run(tmp_path, "on1", jobs=1, propagation=True)
        on2 = self._run(tmp_path, "on2", jobs=2, propagation=True)
        want = json.dumps(base.records)
        assert json.dumps(strip_propagation(on1.records)) == want
        assert json.dumps(strip_propagation(on2.records)) == want
        # and the full propagation-bearing records are jobs-independent
        assert json.dumps(on1.records) == json.dumps(on2.records)

    def test_every_record_carries_propagation(self, tmp_path):
        result = self._run(tmp_path, "all", jobs=1, propagation=True)
        for record in result.records:
            prop = record["propagation"]
            assert prop["schema"] == 1
            assert prop["source"] in ("trace", "prescreen", "synthesized")
            if record.get("prescreened"):
                assert prop["source"] == "prescreen"
                assert prop["sites"], "prescreened runs carry their site"

    def test_off_by_default(self, tmp_path):
        result = self._run(tmp_path, "default", jobs=1, propagation=False)
        assert all("propagation" not in r for r in result.records)

    def test_sidecar_section_jobs_independent(self, tmp_path):
        for tag, jobs in (("j1", 1), ("j2", 2)):
            config = make_config(log_path=tmp_path / f"{tag}.jsonl",
                                 checkpoint_dir=tmp_path / "ckpt",
                                 early_stop="full", propagation=True,
                                 metrics=True)
            Campaign(config).run(jobs=jobs)
        side1 = json.loads(
            (tmp_path / "j1.jsonl.metrics.json").read_text())
        side2 = json.loads(
            (tmp_path / "j2.jsonl.metrics.json").read_text())
        assert (json.dumps(side1["propagation"], sort_keys=True)
                == json.dumps(side2["propagation"], sort_keys=True))
        assert side1["propagation"]["runs"] == 5


class TestSummarize:
    def test_no_propagation_records(self):
        assert summarize_propagation([{"effect": "Masked"}]) is None

    def test_fate_breakdown_and_percentiles(self):
        records = [
            {"effect": "SDC", "structure": "register_file",
             "propagation": {"source": "trace", "injection_cycle": 100,
                             "sites": [{"fate": "consumed",
                                        "fate_cycle": 140}],
                             "diverged_window": [100, 160]}},
            {"effect": "Masked", "structure": "register_file",
             "propagation": {"source": "trace", "injection_cycle": 100,
                             "sites": [{"fate": "overwritten",
                                        "fate_cycle": 120}],
                             "diverged_window": None}},
            {"effect": "Masked", "structure": "l2_cache",
             "propagation": {"source": "prescreen", "injection_cycle": 50,
                             "sites": [], "diverged_window": None}},
        ]
        summary = summarize_propagation(records)
        assert summary["runs"] == 3
        assert summary["sources"] == {"prescreen": 1, "trace": 2}
        assert summary["fates"]["register_file"] == {"consumed": 1,
                                                     "overwritten": 1}
        # a siteless record counts once as never_touched
        assert summary["fates"]["l2_cache"] == {"never_touched": 1}
        ttr = summary["time_to_first_read_cycles"]
        assert ttr["count"] == 1 and ttr["p50"] == 40
        ttf = summary["time_to_failure_cycles"]
        assert ttf["count"] == 1 and ttf["max"] == 60
        sdc = summary["sdc"]
        assert sdc["total"] == 1
        assert sdc["site_consumed"] == 1
        assert sdc["consumed_fraction"] == 1.0


@pytest.fixture(scope="module")
def effect_log(tmp_path_factory):
    """One campaign log containing Masked, SDC and Crash records with
    propagation traces (seed chosen to produce all three)."""
    tmp = tmp_path_factory.mktemp("explain")
    config = CampaignConfig(
        benchmark="vectoradd", card="RTX2060",
        structures=(Structure.REGISTER_FILE,), runs_per_structure=10,
        seed=5, bits_per_fault=3, propagation=True,
        log_path=tmp / "camp.jsonl", early_stop="off")
    result = Campaign(config).run(jobs=2)
    effects = {r["effect"] for r in result.records}
    assert {"Masked", "SDC", "Crash"} <= effects
    return tmp / "camp.jsonl"


class TestExplainRun:
    def _key_for(self, log, effect):
        record = next(r for r in load_records(log)
                      if r["effect"] == effect)
        return (f"{record['kernel']}/{record['structure']}"
                f"/{record['run']}"), record

    @pytest.mark.parametrize("effect", ["SDC", "Masked", "Crash"])
    def test_narrates_each_effect(self, effect_log, capsys, effect):
        key, record = self._key_for(effect_log, effect)
        assert cli_main(["explain-run", str(effect_log), key]) == 0
        out = capsys.readouterr().out
        assert f": {effect}" in out
        assert "injection: cycle" in out
        assert "outcome:" in out

    def test_sdc_names_consumer_or_site(self, effect_log, capsys):
        key, record = self._key_for(effect_log, "SDC")
        cli_main(["explain-run", str(effect_log), key])
        out = capsys.readouterr().out
        assert "sites:" in out

    def test_missing_record_exits_nonzero(self, effect_log, capsys):
        assert cli_main(["explain-run", str(effect_log),
                         "nope/register_file/0"]) == 1
        assert "no record" in capsys.readouterr().err

    def test_malformed_key_rejected(self, effect_log, capsys):
        assert cli_main(["explain-run", str(effect_log), "garbage"]) == 2
        assert "run-key" in capsys.readouterr().err

    def test_record_without_propagation_degrades(self, capsys):
        text = explain_record({"kernel": "k", "structure": "register_file",
                               "run": 0, "effect": "Masked"})
        assert "--propagation" in text


class TestUnappliedInjections:
    def test_injector_flags_no_live_target(self):
        from repro.sim.cards import get_card
        from repro.sim.gpu import GPU

        gpu = GPU(get_card("RTX2060"))  # no launch: no live warps
        mask = FaultMask(Structure.REGISTER_FILE, cycle=0, entry_index=3,
                         bit_offsets=(0,))
        injector = Injector([mask])
        injector.apply_due(gpu, now=0)
        record = injector.log[0]
        assert record["target"] == "none"
        assert record["applied"] is False

    def test_applied_injection_flagged_true(self, tmp_path):
        config = make_config(runs_per_structure=2, early_stop="off",
                             log_path=tmp_path / "c.jsonl")
        result = Campaign(config).run()
        simulated = [r for r in result.records
                     if not r.get("synthesized")
                     and not r.get("prescreened")]
        assert simulated
        for record in simulated:
            for injection in record["injections"]:
                assert injection["applied"] == (
                    injection.get("target") != "none")

    def test_count_unapplied(self):
        records = [
            {"injections": [{"target": "warp", "applied": True}]},
            {"injections": [{"target": "none", "applied": False}]},
            {"injections": [{"target": "none"}]},  # pre-flag log
            {"injections": []},
            {},
        ]
        assert count_unapplied(records) == 2

    def test_report_shows_unapplied_tally(self, tmp_path, capsys):
        log = tmp_path / "c.jsonl"
        records = [
            {"kernel": "k", "structure": "register_file", "run": 0,
             "effect": "Masked",
             "injections": [{"target": "none", "applied": False}]},
            {"kernel": "k", "structure": "register_file", "run": 1,
             "effect": "SDC",
             "injections": [{"target": "warp", "applied": True}]},
        ]
        log.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert cli_main(["report", str(log)]) == 0
        out = capsys.readouterr().out
        assert "unapplied injections: 1" in out


class TestConfigFile:
    def test_propagation_option_roundtrip(self):
        config = parse_config_text(
            "-gpufi_benchmark vectoradd\n-gpufi_card RTX2060\n"
            "-gpufi_propagation 1\n")
        assert config.propagation is True
        assert "-gpufi_propagation 1" in dump_config(config)
        config = parse_config_text(
            "-gpufi_benchmark vectoradd\n-gpufi_card RTX2060\n")
        assert config.propagation is False
