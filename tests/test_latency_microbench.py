"""Timing-model validation via latency microbenchmarks.

Pointer-chase kernels measure the *observed* latency of each memory
level and of the ALU pipeline, the way real-GPU microbenchmarking
papers calibrate simulators (cf. Accel-Sim).  The measured values must
match the configured latencies to within the fixed pipeline overheads,
pinning the timing model to its documented parameters.
"""

import numpy as np
import pytest

from repro.sim.cards import rtx_2060
from repro.sim.device import Device
from repro.sim.kernel import Kernel

CHASES = 64


def chase_kernel(load: str) -> Kernel:
    """Serial pointer chase: each load's address depends on the last."""
    return Kernel("chase", f"""
    LDC R4, c[0x0]             ; chain base
    MOV R10, 0                 ; i
loop:
    {load} R4, [R4]
    IADD R10, R10, 1
    ISETP.LT.AND P0, PT, R10, {CHASES}, PT
@P0 BRA loop
    LDC R8, c[0x4]
    STG [R8], R4
    EXIT
""", num_params=2)


def build_chain(dev, stride: int, length: int) -> int:
    """Device array where element i*stride points to element (i+1)."""
    words = stride * (length + 1) // 4
    chain = np.zeros(words, dtype=np.uint32)
    base = dev.malloc(chain.nbytes)
    for i in range(length + 1):
        target = base + ((i + 1) % (length + 1)) * stride
        chain[i * stride // 4] = target
    dev.memcpy_htod(base, chain)
    return base


def measure(load: str, stride: int, length: int = CHASES + 1) -> float:
    """Cycles per dependent load, single warp, one lane pattern."""
    dev = Device(rtx_2060())
    base = build_chain(dev, stride, length)
    out = dev.malloc(4)
    # warm-up launch fills the caches; second launch measures
    kernel = chase_kernel(load)
    dev.launch(kernel, grid=1, block=1, params=[base, out])
    start = dev.cycle
    dev.launch(kernel, grid=1, block=1, params=[base, out])
    return (dev.cycle - start) / CHASES


class TestMemoryLatencies:
    def test_l1_hit_latency(self):
        # 8 lines chased repeatedly: resident in L1 after warm-up...
        # but L1s are invalidated per launch, so measure cold/warm mix
        # inside one launch instead: small footprint -> mostly L1 hits
        cfg = rtx_2060()
        per_load = measure("LDG", stride=128, length=8)
        assert per_load < cfg.l2_hit_latency, \
            f"small-footprint chase must run at ~L1 speed ({per_load})"
        assert per_load >= cfg.l1_hit_latency * 0.8

    def test_l2_latency_visible_when_thrashing_l1(self):
        # footprint > L1 (64 KB) but << L2 (3 MB): every access misses
        # L1 (capacity) after the first pass and hits L2
        cfg = rtx_2060()
        per_load = measure("LDG", stride=4096, length=CHASES)
        assert per_load > cfg.l1_hit_latency * 1.5
        assert per_load < cfg.dram_latency * 1.5

    def test_texture_path_latency_similar(self):
        ldg = measure("LDG", stride=128, length=8)
        tld = measure("TLD", stride=128, length=8)
        assert tld == pytest.approx(ldg, rel=0.5)

    def test_latency_ordering(self):
        """Deeper levels must cost strictly more per dependent load."""
        l1ish = measure("LDG", stride=128, length=8)
        l2ish = measure("LDG", stride=4096, length=CHASES)
        assert l1ish < l2ish


class TestAluLatency:
    def test_dependent_alu_chain(self):
        cfg = rtx_2060()
        n = 256
        kernel = Kernel("alu_chain", f"""
    MOV R4, 1
    MOV R10, 0
loop:
    IADD R4, R4, 1
    IADD R10, R10, 1
    ISETP.LT.AND P0, PT, R10, {n}, PT
@P0 BRA loop
    LDC R8, c[0x0]
    STG [R8], R4
    EXIT
""", num_params=1)
        dev = Device(rtx_2060())
        out = dev.malloc(4)
        dev.launch(kernel, grid=1, block=1, params=[out])
        # 4 dependent instructions per iteration, each alu_latency
        per_iter = dev.cycle / n
        assert per_iter == pytest.approx(4 * cfg.alu_latency, rel=0.5)

    def test_sfu_slower_than_alu(self):
        def run(body):
            kernel = Kernel("k", f"""
    MOV R4, 1.5
    MOV R10, 0
loop:
    {body}
    IADD R10, R10, 1
    ISETP.LT.AND P0, PT, R10, 64, PT
@P0 BRA loop
    LDC R8, c[0x0]
    STG [R8], R4
    EXIT
""", num_params=1)
            dev = Device(rtx_2060())
            out = dev.malloc(4)
            dev.launch(kernel, grid=1, block=1, params=[out])
            return dev.cycle

        assert run("MUFU.RCP R4, R4") > run("FADD R4, R4, 1.0")
