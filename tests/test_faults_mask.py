"""Fault mask generation: bounds, determinism, serialisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.mask import FaultMask, MaskGenerator, MultiBitMode
from repro.faults.targets import Structure
from repro.sim.cards import rtx_2060

WINDOWS = [(0, 1000), (2500, 3000)]


def make_generator(seed=0, regs=16, smem=2048, local=64):
    return MaskGenerator(rtx_2060(), WINDOWS, regs, smem, local,
                         np.random.default_rng(seed))


class TestCycleSampling:
    def test_cycles_inside_windows(self):
        gen = make_generator()
        for _ in range(200):
            cycle = gen.random_cycle()
            assert (0 <= cycle < 1000) or (2500 <= cycle < 3000)

    def test_all_windows_sampled(self):
        gen = make_generator()
        cycles = {gen.random_cycle() >= 2500 for _ in range(300)}
        assert cycles == {True, False}

    def test_empty_windows_rejected(self):
        with pytest.raises(ValueError):
            MaskGenerator(rtx_2060(), [], 8, 0, 0,
                          np.random.default_rng(0))

    def test_zero_length_window_rejected(self):
        with pytest.raises(ValueError):
            MaskGenerator(rtx_2060(), [(5, 5)], 8, 0, 0,
                          np.random.default_rng(0))


class TestEntrySpaces:
    def test_register_file_entry_in_allocated_range(self):
        gen = make_generator(regs=12)
        for _ in range(100):
            mask = gen.generate(Structure.REGISTER_FILE)
            assert 0 <= mask.entry_index < 12
            assert all(0 <= b < 32 for b in mask.bit_offsets)

    def test_shared_entry_is_word_index(self):
        gen = make_generator(smem=2048)
        for _ in range(50):
            mask = gen.generate(Structure.SHARED_MEM)
            assert 0 <= mask.entry_index < 512

    def test_cache_entry_is_line_index(self):
        gen = make_generator()
        card = rtx_2060()
        for _ in range(50):
            mask = gen.generate(Structure.L2_CACHE)
            assert 0 <= mask.entry_index < card.l2.num_lines
            assert all(0 <= b < 128 * 8 + 57 for b in mask.bit_offsets)

    def test_l1d_uses_per_core_lines(self):
        gen = make_generator()
        card = rtx_2060()
        mask = gen.generate(Structure.L1D_CACHE)
        assert mask.entry_index < card.l1d.num_lines


class TestMultiBit:
    def test_single_bit_default(self):
        mask = make_generator().generate(Structure.REGISTER_FILE)
        assert len(mask.bit_offsets) == 1

    def test_triple_bit_same_entry_distinct(self):
        gen = make_generator()
        for _ in range(50):
            mask = gen.generate(Structure.REGISTER_FILE, n_bits=3)
            assert len(set(mask.bit_offsets)) == 3

    def test_adjacent_mode_consecutive(self):
        gen = make_generator()
        for _ in range(50):
            mask = gen.generate(Structure.REGISTER_FILE, n_bits=3,
                                mode=MultiBitMode.ADJACENT)
            bits = mask.bit_offsets
            assert bits[1] == bits[0] + 1 and bits[2] == bits[0] + 2

    def test_bits_clamped_to_entry_width(self):
        gen = make_generator()
        mask = gen.generate(Structure.REGISTER_FILE, n_bits=64)
        assert len(mask.bit_offsets) == 32


class TestDeterminism:
    def test_same_seed_same_masks(self):
        masks_a = [make_generator(7).generate(Structure.REGISTER_FILE)
                   for _ in range(1)]
        masks_b = [make_generator(7).generate(Structure.REGISTER_FILE)
                   for _ in range(1)]
        assert masks_a == masks_b

    def test_different_seeds_differ(self):
        a = make_generator(1).generate(Structure.L2_CACHE)
        b = make_generator(2).generate(Structure.L2_CACHE)
        assert a != b


class TestSerialisation:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, seed):
        gen = make_generator(seed)
        structure = [Structure.REGISTER_FILE, Structure.SHARED_MEM,
                     Structure.L2_CACHE][seed % 3]
        mask = gen.generate(structure, n_bits=1 + seed % 3,
                            warp_level=bool(seed % 2))
        assert FaultMask.from_dict(mask.to_dict()) == mask

    def test_dict_is_json_safe(self):
        import json

        mask = make_generator().generate(Structure.L1T_CACHE)
        json.dumps(mask.to_dict())
