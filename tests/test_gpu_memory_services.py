"""GPU-level memory services: contention, host access edge cases."""

import numpy as np
import pytest

from repro.sim.cards import rtx_2060
from repro.sim.gpu import GPU


@pytest.fixture
def gpu():
    gpu = GPU(rtx_2060())
    gpu.memory.malloc(64 * 1024)
    return gpu


class TestL2BankContention:
    def test_back_to_back_same_bank_serialises(self, gpu):
        base = 0x1000
        _, first = gpu._l2_line(base)
        _, second = gpu._l2_line(base)  # same bank, same cycle
        assert second > gpu.config.l2_hit_latency - 1
        assert second >= gpu.config.l2_bank_service

    def test_different_banks_independent(self, gpu):
        line_bytes = gpu.l2.geometry.line_bytes
        gpu._l2_line(0x1000)
        # the next line maps to the next bank: no serialisation
        _, latency = gpu._l2_line(0x1000 + line_bytes)
        assert latency == gpu.config.dram_latency

    def test_contention_decays_with_time(self, gpu):
        gpu._l2_line(0x1000)
        gpu.cycle += 1000
        _, latency = gpu._l2_line(0x1000)
        assert latency == gpu.config.l2_hit_latency

    def test_deterministic(self):
        def run():
            gpu = GPU(rtx_2060())
            gpu.memory.malloc(4096)
            return [gpu._l2_line(0x1000 + 128 * i)[1] for i in range(8)]

        assert run() == run()


class TestDramContention:
    def test_l2_misses_pay_channel_contention(self, gpu):
        stride = gpu.l2.geometry.line_bytes * gpu.config.dram_channels
        _, first = gpu._l2_line(0x1000)            # miss -> DRAM
        _, second = gpu._l2_line(0x1000 + stride)  # same channel, miss
        assert first == gpu.config.dram_latency
        assert second > gpu.config.dram_latency

    def test_l2_hits_do_not_touch_dram(self, gpu):
        gpu._l2_line(0x1000)
        busy_before = list(gpu._dram_busy)
        gpu.cycle += 10_000
        gpu._l2_line(0x1000)  # hit
        assert gpu._dram_busy == busy_before


class TestHostAccess:
    def test_host_read_spans_multiple_lines(self, gpu):
        data = np.arange(512, dtype=np.uint8)
        gpu.host_write(0x1000, data)
        gpu._l2_line(0x1080)  # make the middle line resident
        out = gpu.host_read(0x1000, 512)
        assert np.array_equal(out, data)

    def test_host_read_unaligned_window(self, gpu):
        data = np.arange(100, dtype=np.uint8)
        gpu.host_write(0x1020, data)
        out = gpu.host_read(0x1024, 50)
        assert np.array_equal(out, data[4:54])

    def test_host_write_partial_line_update(self, gpu):
        gpu.host_write(0x1000, np.zeros(256, dtype=np.uint8))
        gpu._l2_line(0x1000)
        gpu.host_write(0x1004, np.full(4, 0xAB, dtype=np.uint8))
        line = gpu.l2.peek(0x1000)
        assert line.data[4] == 0xAB
        assert line.data[3] == 0

    def test_dram_write_words_syncs_stale_l2(self, gpu):
        gpu._l2_line(0x1000)
        gpu.dram_write_words(0x1000, np.array([1]),
                             np.array([0x42], dtype=np.uint32))
        assert gpu.l2.read_word(gpu.l2.peek(0x1000), 0x1004) == 0x42
        assert gpu.memory.read_word(0x1004) == 0x42
