"""Injection engine: spatial resolution and bit flips per structure."""

import numpy as np
import pytest

from repro.faults.injector import Injector
from repro.faults.mask import FaultMask
from repro.faults.targets import Structure
from repro.sim.device import Device, RunOptions
from repro.sim.kernel import Kernel

# spins long enough for mid-kernel injections to have a live target,
# then writes every register-visible value out
SPIN = Kernel("spin", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    MOV R10, 0x5555
    MOV R11, 0
loop:
    IADD R11, R11, 1
    ISETP.LT.AND P0, PT, R11, 200, PT
@P0 BRA loop
    STG [R9], R10
    EXIT
""", num_params=1)


def run_with(masks, kernel=SPIN, smem=0, local=0, card="RTX2060"):
    injector = Injector(masks)
    dev = Device(card, RunOptions(injector=injector))
    out = dev.malloc(4 * 32)
    dev.launch(kernel, grid=1, block=32, params=[out])
    return dev, injector, dev.read_array(out, (32,), np.uint32)


def mask_for(structure, cycle=250, entry=10, bits=(3,), **kw):
    return FaultMask(structure=structure, cycle=cycle, entry_index=entry,
                     bit_offsets=tuple(bits), seed=kw.pop("seed", 42), **kw)


class TestRegisterFileInjection:
    def test_thread_flip_hits_one_lane(self):
        # R10 holds 0x5555 during the loop; flipping bit 3 of R10 in one
        # thread changes exactly one output word
        dev, injector, out = run_with(
            [mask_for(Structure.REGISTER_FILE, entry=10, bits=(3,))])
        record = injector.log[0]
        assert record["target"] == "thread"
        changed = np.nonzero(out != 0x5555)[0]
        assert len(changed) == 1
        assert out[changed[0]] == 0x5555 ^ 0x8

    def test_warp_flip_hits_all_lanes(self):
        dev, injector, out = run_with(
            [mask_for(Structure.REGISTER_FILE, entry=10, bits=(0,),
                      warp_level=True)])
        assert injector.log[0]["target"] == "warp"
        assert (out == 0x5554).all()

    def test_multi_bit_flip(self):
        dev, injector, out = run_with(
            [mask_for(Structure.REGISTER_FILE, entry=10, bits=(0, 1, 2),
                      warp_level=True)])
        assert (out == (0x5555 ^ 0b111)).all()

    def test_entry_wraps_to_allocated_registers(self):
        # entry index beyond the kernel's registers must still resolve
        dev, injector, out = run_with(
            [mask_for(Structure.REGISTER_FILE, entry=1000, bits=(0,))])
        assert injector.log[0]["target"] == "thread"

    def test_injection_after_completion_is_lost(self):
        dev, injector, out = run_with(
            [mask_for(Structure.REGISTER_FILE, cycle=10**9)])
        assert not injector.log  # never applied
        assert injector.due_cycle() == 10**9

    def test_deterministic_spatial_pick(self):
        mask = mask_for(Structure.REGISTER_FILE, seed=99)
        _, inj_a, _ = run_with([mask])
        _, inj_b, _ = run_with([mask])
        assert inj_a.log[0]["lane"] == inj_b.log[0]["lane"]


class TestSharedMemoryInjection:
    SMEM_KERNEL = Kernel("smem_spin", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    MOV R10, 0xAAAA
    STS [R3], R10
    MOV R11, 0
loop:
    IADD R11, R11, 1
    ISETP.LT.AND P0, PT, R11, 200, PT
@P0 BRA loop
    LDS R12, [R3]
    STG [R9], R12
    EXIT
""", num_params=1, smem_bytes=128)

    def test_smem_flip_corrupts_one_word(self):
        dev, injector, out = run_with(
            [mask_for(Structure.SHARED_MEM, entry=5, bits=(0,))],
            kernel=self.SMEM_KERNEL)
        assert injector.log[0]["target"] == "cta"
        assert out[5] == 0xAAAB
        assert (np.delete(out, 5) == 0xAAAA).all()

    def test_no_smem_kernel_is_masked(self):
        dev, injector, out = run_with(
            [mask_for(Structure.SHARED_MEM)])
        assert injector.log[0]["target"] == "none"
        assert (out == 0x5555).all()


class TestLocalMemoryInjection:
    LOCAL_KERNEL = Kernel("local_spin", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    MOV R10, 0x77
    STL [RZ], R10
    MOV R11, 0
loop:
    IADD R11, R11, 1
    ISETP.LT.AND P0, PT, R11, 200, PT
@P0 BRA loop
    LDL R12, [RZ]
    STG [R9], R12
    EXIT
""", num_params=1, local_bytes=8)

    def test_local_flip_hits_one_thread(self):
        dev, injector, out = run_with(
            [mask_for(Structure.LOCAL_MEM, entry=0, bits=(1,))],
            kernel=self.LOCAL_KERNEL)
        changed = np.nonzero(out != 0x77)[0]
        assert len(changed) == 1
        assert out[changed[0]] == 0x77 ^ 0b10

    def test_no_local_kernel_is_masked(self):
        dev, injector, out = run_with([mask_for(Structure.LOCAL_MEM)])
        assert injector.log[0]["target"] == "none"


class TestCacheInjection:
    def test_l2_flip_applied(self):
        dev, injector, _ = run_with([mask_for(Structure.L2_CACHE,
                                              entry=3, bits=(60,))])
        flips = injector.log[0]["flips"]
        assert flips[0]["cache"] == "L2" and flips[0]["field"] == "data"

    def test_l1d_targets_busy_core(self):
        dev, injector, _ = run_with([mask_for(Structure.L1D_CACHE)])
        record = injector.log[0]
        assert record["target"] == "l1"
        assert record["flips"][0]["cache"].startswith("L1D.")

    def test_l1d_on_titan_is_masked(self):
        dev, injector, _ = run_with([mask_for(Structure.L1D_CACHE)],
                                    card="GTXTitan")
        assert injector.log[0]["target"] == "none"

    def test_l1t_flip(self):
        dev, injector, _ = run_with([mask_for(Structure.L1T_CACHE)])
        assert injector.log[0]["flips"][0]["cache"].startswith("L1T.")

    def test_tag_bit_recorded(self):
        dev, injector, _ = run_with([mask_for(Structure.L2_CACHE,
                                              bits=(5,))])
        assert injector.log[0]["flips"][0]["field"] == "tag"

    def test_hook_mode_defers(self):
        injector = Injector([mask_for(Structure.L2_CACHE, bits=(100,))],
                            cache_hook_mode=True)
        dev = Device("RTX2060", RunOptions(injector=injector))
        out = dev.malloc(4 * 32)
        dev.launch(SPIN, grid=1, block=32, params=[out])
        assert injector.log[0]["flips"][0]["mode"] == "hook"


class TestInjectorMechanics:
    def test_masks_applied_in_cycle_order(self):
        masks = [mask_for(Structure.REGISTER_FILE, cycle=280, seed=1),
                 mask_for(Structure.REGISTER_FILE, cycle=220, seed=2)]
        _, injector, _ = run_with(masks)
        applied = [rec["applied_at"] for rec in injector.log]
        assert applied == sorted(applied)

    def test_due_cycle_advances(self):
        injector = Injector([mask_for(Structure.L2_CACHE, cycle=5)])
        assert injector.due_cycle() == 5

    def test_multi_structure_same_run(self):
        masks = [mask_for(Structure.REGISTER_FILE, cycle=230, seed=3),
                 mask_for(Structure.L2_CACHE, cycle=260, seed=4)]
        _, injector, _ = run_with(masks)
        assert len(injector.log) == 2
