"""Outcome classification (Masked / SDC / Crash / Timeout / Performance)."""

import pytest

from repro.faults.classify import TIMEOUT_FACTOR, FaultEffect, classify_run
from repro.faults.runner import RunResult


def result(status="completed", passed=True, cycles=1000):
    return RunResult(status=status, passed=passed,
                     message="", cycles=cycles)


class TestClassification:
    def test_masked(self):
        assert classify_run(result(), 1000) is FaultEffect.MASKED

    def test_performance_when_cycles_differ(self):
        assert classify_run(result(cycles=1100), 1000) is \
            FaultEffect.PERFORMANCE
        assert classify_run(result(cycles=900), 1000) is \
            FaultEffect.PERFORMANCE

    def test_sdc(self):
        assert classify_run(result(passed=False), 1000) is FaultEffect.SDC

    def test_sdc_even_with_identical_cycles(self):
        assert classify_run(result(passed=False, cycles=1000), 1000) is \
            FaultEffect.SDC

    def test_crash(self):
        assert classify_run(result(status="crash", passed=None), 1000) is \
            FaultEffect.CRASH

    def test_timeout(self):
        assert classify_run(result(status="timeout", passed=None), 1000) is \
            FaultEffect.TIMEOUT


class TestPrecedence:
    """Status outranks the output check, which outranks timing."""

    def test_crash_wins_over_failed_output(self):
        assert classify_run(result(status="crash", passed=False),
                            1000) is FaultEffect.CRASH

    def test_crash_wins_over_passed_output_and_changed_cycles(self):
        assert classify_run(result(status="crash", passed=True,
                                   cycles=1234), 1000) is FaultEffect.CRASH

    def test_timeout_wins_over_failed_output(self):
        assert classify_run(result(status="timeout", passed=False),
                            1000) is FaultEffect.TIMEOUT

    def test_timeout_wins_over_passed_output(self):
        # a run can produce correct partial output and still hang
        assert classify_run(result(status="timeout", passed=True,
                                   cycles=2000), 1000) is FaultEffect.TIMEOUT

    def test_sdc_wins_over_changed_cycles(self):
        # FAILED output with a cycle delta is SDC, not Performance
        assert classify_run(result(passed=False, cycles=1700),
                            1000) is FaultEffect.SDC

    def test_passed_with_cycle_delta_is_performance_not_masked(self):
        for cycles in (999, 1001, 2 * 1000 - 1):
            assert classify_run(result(cycles=cycles), 1000) is \
                FaultEffect.PERFORMANCE

    def test_passed_none_is_not_sdc_masked(self):
        # completed but the output check never ran (passed=None):
        # `not None` is truthy, so this classifies as SDC -- the run
        # cannot prove its output was correct
        assert classify_run(result(passed=None), 1000) is FaultEffect.SDC


class TestFailureSemantics:
    def test_failure_classes(self):
        assert FaultEffect.SDC.is_failure
        assert FaultEffect.CRASH.is_failure
        assert FaultEffect.TIMEOUT.is_failure

    def test_non_failure_classes(self):
        assert not FaultEffect.MASKED.is_failure
        assert not FaultEffect.PERFORMANCE.is_failure

    def test_timeout_factor_is_two(self):
        # "equal to two times the fault-free execution time"
        assert TIMEOUT_FACTOR == 2
