"""Simultaneous multi-structure fault generation (Table IV combos)."""

import numpy as np
import pytest

from repro.faults.injector import Injector
from repro.faults.mask import MaskGenerator
from repro.faults.targets import Structure
from repro.sim.cards import rtx_2060
from repro.sim.device import RunOptions


def make_generator(seed=0):
    return MaskGenerator(rtx_2060(), [(0, 500)], regs_per_thread=16,
                         smem_bytes=1024, local_bytes=32,
                         rng=np.random.default_rng(seed))


class TestSimultaneous:
    COMBO = (Structure.REGISTER_FILE, Structure.SHARED_MEM,
             Structure.L2_CACHE)

    def test_shared_cycle(self):
        masks = make_generator().generate_simultaneous(self.COMBO)
        assert len(masks) == 3
        assert len({m.cycle for m in masks}) == 1

    def test_structures_in_order(self):
        masks = make_generator().generate_simultaneous(self.COMBO)
        assert tuple(m.structure for m in masks) == self.COMBO

    def test_independent_spatial_seeds(self):
        masks = make_generator().generate_simultaneous(
            (Structure.REGISTER_FILE, Structure.REGISTER_FILE))
        assert masks[0].seed != masks[1].seed

    def test_kwargs_forwarded(self):
        masks = make_generator().generate_simultaneous(
            self.COMBO, n_bits=2, warp_level=True)
        for mask in masks:
            assert len(mask.bit_offsets) == 2
            assert mask.warp_level

    def test_injector_applies_all_in_one_run(self):
        from repro.sim.device import Device
        from repro.sim.kernel import Kernel

        kernel = Kernel("spin", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    STS [R3], R0
    MOV R11, 0
loop:
    IADD R11, R11, 1
    ISETP.LT.AND P0, PT, R11, 100, PT
@P0 BRA loop
    EXIT
""", smem_bytes=256, local_bytes=16)
        masks = make_generator(3).generate_simultaneous(
            (Structure.REGISTER_FILE, Structure.SHARED_MEM,
             Structure.LOCAL_MEM))
        # pin the cycle early enough that every CTA is still live
        masks = tuple(
            type(m)(structure=m.structure, cycle=50,
                    entry_index=m.entry_index, bit_offsets=m.bit_offsets,
                    seed=m.seed) for m in masks)
        injector = Injector(list(masks))
        dev = Device("RTX2060", RunOptions(injector=injector))
        dev.launch(kernel, grid=1, block=32, params=[])
        assert len(injector.log) == 3
        targets = {rec["mask"]["structure"] for rec in injector.log}
        assert targets == {"register_file", "shared_mem", "local_mem"}
