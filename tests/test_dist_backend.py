"""Backend selection, config surfaces and the campaign log header."""

import dataclasses
import json

import pytest

from repro.dist.backend import (Backend, LocalPoolBackend,
                                RemoteFleetBackend, backend_names,
                                make_backend)
from repro.dist.protocol import canonical_log_text
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.config_file import dump_config, parse_config_text
from repro.faults.executor import (CampaignExecutor, log_header,
                                   plan_fingerprint)
from repro.faults.parser import (load_records, read_log_header,
                                 scan_completed_records)
from repro.faults.targets import Structure

SMALL = dict(benchmark="vectoradd", card="RTX2060",
             structures=(Structure.REGISTER_FILE,),
             runs_per_structure=3, seed=7)


class TestBackendSelection:
    def test_registry(self):
        assert backend_names() == ["local", "remote"]
        local = make_backend(CampaignConfig(**SMALL))
        assert isinstance(local, LocalPoolBackend)
        remote = make_backend(dataclasses.replace(
            CampaignConfig(**SMALL), backend="remote",
            backend_url="http://x:1"))
        assert isinstance(remote, RemoteFleetBackend)
        assert isinstance(local, Backend)

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            CampaignConfig(**SMALL, backend="cloud")

    def test_local_is_the_default_and_changes_nothing(self, tmp_path):
        """The Backend seam must be invisible on the default path."""
        config = CampaignConfig(**SMALL,
                                log_path=tmp_path / "via_campaign.jsonl")
        assert config.backend == "local"
        result = Campaign(config).run(jobs=1)
        # bypass the backend seam entirely: raw executor on the plan
        campaign = Campaign(CampaignConfig(**SMALL))
        specs = campaign.plan()
        direct = CampaignExecutor(
            jobs=1, log_path=tmp_path / "direct.jsonl").execute(specs)
        assert result.records == direct
        # serial execution logs in plan order: strictly byte-identical
        assert (tmp_path / "via_campaign.jsonl").read_text() == \
               (tmp_path / "direct.jsonl").read_text()
        # a parallel pool returns the same records through the seam
        assert Campaign(CampaignConfig(**SMALL)).run(jobs=2).records \
               == direct


class TestConfigFileSurface:
    def test_backend_options_round_trip(self):
        config = dataclasses.replace(
            CampaignConfig(**{**SMALL, "structures": None}),
            backend="remote", backend_url="http://host:8937")
        text = dump_config(config)
        assert "-gpufi_backend remote" in text
        assert "-gpufi_backend_url http://host:8937" in text
        parsed = parse_config_text(text)
        assert parsed.backend == "remote"
        assert parsed.backend_url == "http://host:8937"

    def test_local_backend_elided_from_dump(self):
        text = dump_config(CampaignConfig(**{**SMALL,
                                             "structures": None}))
        assert "-gpufi_backend" not in text
        assert parse_config_text(text).backend == "local"

    def test_url_survives_comment_stripping(self):
        # "//" only starts a comment at start-of-line or after
        # whitespace; http:// URLs must not be truncated
        config = parse_config_text(
            "-gpufi_benchmark vectoradd // trailing comment\n"
            "// a full-line comment\n"
            "-gpufi_card RTX2060\n"
            "-gpufi_backend_url http://host:8937\n"
            "-gpufi_backend remote\n")
        assert config.benchmark == "vectoradd"
        assert config.backend_url == "http://host:8937"


class TestLogHeader:
    def test_executor_stamps_header(self, tmp_path):
        campaign = Campaign(CampaignConfig(**SMALL,
                                           log_path=tmp_path / "a.jsonl"))
        specs = campaign.plan()
        campaign.execute(specs)
        header = read_log_header(tmp_path / "a.jsonl")
        assert header["gpufi_log"] == 1
        assert header["fingerprint"] == plan_fingerprint(specs)
        assert header["runs"] == len(specs)
        assert header["benchmark"] == "vectoradd"

    def test_header_is_shard_and_order_independent(self, tmp_path):
        campaign = Campaign(CampaignConfig(**SMALL))
        specs = campaign.plan()
        assert log_header(specs)["fingerprint"] == \
               log_header(list(reversed(specs)))["fingerprint"]

    def test_parsers_skip_header(self, tmp_path):
        log = tmp_path / "log.jsonl"
        campaign = Campaign(CampaignConfig(**SMALL, log_path=log))
        specs = campaign.plan()
        records = campaign.execute(specs)
        loaded = load_records(log)
        assert loaded == records  # header filtered, records intact
        scanned = scan_completed_records(log)
        assert len(scanned) == len(specs)
        assert all("gpufi_log" not in r for r in scanned.values())

    def test_headerless_logs_still_parse(self, tmp_path):
        log = tmp_path / "old.jsonl"
        log.write_text(json.dumps(
            {"kernel": "k", "structure": "register_file", "run": 0,
             "effect": "Masked"}) + "\n")
        assert read_log_header(log) is None
        assert len(load_records(log)) == 1

    def test_resume_appends_without_second_header(self, tmp_path):
        log = tmp_path / "resume.jsonl"
        campaign = Campaign(CampaignConfig(**SMALL, log_path=log))
        specs = campaign.plan()
        campaign.execute(specs)
        # cut the log after the header + one record, then resume
        lines = log.read_text().splitlines(keepends=True)
        log.write_text("".join(lines[:2]))
        resumed = Campaign(CampaignConfig(**SMALL, log_path=log))
        resumed_specs = resumed.plan()
        records = resumed.execute(resumed_specs, resume=True)
        text = log.read_text()
        assert text.count('"gpufi_log"') == 1
        assert len(records) == len(specs)
        assert len(load_records(log)) == len(specs)

    def test_canonicalize_cli(self, tmp_path, capsys):
        from repro.cli import main

        log = tmp_path / "c.jsonl"
        campaign = Campaign(CampaignConfig(**SMALL, log_path=log))
        records = campaign.execute(campaign.plan())
        assert main(["canonicalize", str(log)]) == 0
        out = capsys.readouterr().out
        assert out == canonical_log_text(records)
