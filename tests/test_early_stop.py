"""Masked-fault early termination: parity, liveness and soundness.

The contract under test: ``early_stop`` in any mode ("off",
"converge", "full") yields *identical per-class effect counts* -- the
modes only change how much wall-clock is spent proving the Masked
class.  Convergence-terminated records carry a ``terminated_at``
cycle and pre-screened records a ``prescreen_reason`` as provenance.
"""

import dataclasses
from collections import Counter

import numpy as np
import pytest

from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.early_stop import (ConvergenceMonitor, EarlyConvergence,
                                     Prescreener)
from repro.faults.executor import ProgressReporter, execute_run
from repro.faults.mask import FaultMask, MaskGenerator
from repro.faults.targets import Structure
from repro.sim.cards import rtx_2060
from repro.sim.checkpoint import state_digest
from repro.sim.device import Device, RunOptions
from repro.sim.kernel import Kernel
from repro.sim.liveness import LivenessTrace


def effect_counts(result):
    """Per-(kernel, structure, effect) record counts."""
    return Counter((r["kernel"], r["structure"], r["effect"])
                   for r in result.records)


def run_campaign(tmp_path, benchmark, structures, early_stop, runs=8,
                 seed=5, interval=None, hook=False, jobs=1,
                 checkpoints=True):
    cfg = CampaignConfig(
        benchmark=benchmark, card="RTX2060", structures=structures,
        runs_per_structure=runs, seed=seed,
        checkpoint_dir=(tmp_path / f"ckpt_{early_stop}"
                        if checkpoints else None),
        checkpoint_interval=interval,
        cache_hook_mode=hook, early_stop=early_stop)
    return Campaign(cfg).run(jobs=jobs)


class TestClassificationParity:
    """Effect counts must be identical across every early-stop mode,
    benchmark, structure, job count and checkpoint interval."""

    @pytest.mark.parametrize("bench,structures,runs", [
        ("vectoradd", (Structure.REGISTER_FILE, Structure.L2_CACHE), 8),
        ("scalarprod", (Structure.SHARED_MEM, Structure.LOCAL_MEM), 5),
    ])
    def test_modes_agree(self, tmp_path, bench, structures, runs):
        baseline = run_campaign(tmp_path, bench, structures, "off",
                                runs=runs)
        base = effect_counts(baseline)
        assert not any("terminated_at" in r or r.get("prescreened")
                       for r in baseline.records)
        for mode in ("converge", "full"):
            got = run_campaign(tmp_path, bench, structures, mode,
                               runs=runs)
            assert effect_counts(got) == base, mode
        # the matrix is only meaningful if pre-screening actually fired
        full = run_campaign(tmp_path, bench, structures, "full",
                            runs=runs)
        assert any(r.get("prescreened") for r in full.records)

    def test_jobs_and_interval_independent(self, tmp_path):
        structures = (Structure.REGISTER_FILE, Structure.L2_CACHE)
        base = effect_counts(run_campaign(
            tmp_path, "vectoradd", structures, "off", runs=6))
        got = effect_counts(run_campaign(
            tmp_path, "vectoradd", structures, "full", runs=6,
            jobs=2, interval=64))
        assert got == base

    def test_hook_mode_parity(self, tmp_path):
        structures = (Structure.L2_CACHE,)
        base = effect_counts(run_campaign(
            tmp_path, "vectoradd", structures, "off", runs=10,
            hook=True))
        got = effect_counts(run_campaign(
            tmp_path, "vectoradd", structures, "full", runs=10,
            hook=True))
        assert got == base

    def test_full_without_checkpoints_still_prescreens(self, tmp_path):
        """Pre-screening needs only the liveness trace, not snapshots."""
        structures = (Structure.REGISTER_FILE,)
        base = effect_counts(run_campaign(
            tmp_path, "vectoradd", structures, "off", runs=8,
            checkpoints=False))
        full = run_campaign(tmp_path, "vectoradd", structures, "full",
                            runs=8, checkpoints=False)
        assert effect_counts(full) == base
        assert any(r.get("prescreened") for r in full.records)

    def test_bad_mode_rejected(self, tmp_path):
        cfg = CampaignConfig(benchmark="vectoradd", card="RTX2060",
                             early_stop="sometimes")
        with pytest.raises(ValueError, match="early_stop"):
            Campaign(cfg).plan()


class TestConvergence:
    def test_termination_fires_and_stays_masked(self, tmp_path):
        """With dense checkpoints, some Masked runs must terminate
        early -- and every terminated record is Masked with the exact
        golden cycle count (the inherited suffix)."""
        result = run_campaign(tmp_path, "vectoradd",
                              (Structure.REGISTER_FILE,), "converge",
                              runs=12, interval=50)
        terminated = [r for r in result.records
                      if r.get("terminated_at") is not None]
        assert terminated, "no run converged despite dense checkpoints"
        for record in terminated:
            assert record["effect"] == "Masked"
            assert record["cycles"] == record["golden_cycles"]
            assert record["terminated_at"] <= record["golden_cycles"]
            assert record["terminated_at"] > record["mask"]["cycle"]

    def test_monitor_orders_entries(self):
        entries = [{"cycle": 100, "launch_index": 0, "state_hash": "aa"},
                   {"cycle": 50, "launch_index": 0, "state_hash": "bb"}]
        monitor = ConvergenceMonitor(entries, [], golden_cycles=500)
        assert monitor.next_cycle() == 50

    def test_monitor_disabled_by_host_divergence(self):
        entries = [{"cycle": 50, "launch_index": 0, "state_hash": "aa"}]
        reads = [{"tag": 0, "addr": 64, "nbytes": 4,
                  "data": np.array([1, 2, 3, 4], dtype=np.uint8)}]
        monitor = ConvergenceMonitor(entries, reads, golden_cycles=500)
        monitor.on_host_read(0, 64, 4,
                             np.array([1, 2, 3, 9], dtype=np.uint8))
        assert monitor.diverged
        assert monitor.next_cycle() is None

    def test_monitor_accepts_matching_reads(self):
        entries = [{"cycle": 50, "launch_index": 0, "state_hash": "aa"}]
        data = np.array([1, 2, 3, 4], dtype=np.uint8)
        reads = [{"tag": 0, "addr": 64, "nbytes": 4, "data": data}]
        monitor = ConvergenceMonitor(entries, reads, golden_cycles=500)
        monitor.on_host_read(0, 64, 4, data.copy())
        assert not monitor.diverged
        # more reads than golden performed: host flow diverged
        monitor.on_host_read(0, 64, 4, data.copy())
        assert monitor.diverged

    def test_early_convergence_is_not_a_crash(self):
        from repro.sim.errors import SimulationError

        exc = EarlyConvergence(120, 400)
        assert not isinstance(exc, SimulationError)
        assert exc.cycle == 120 and exc.golden_cycles == 400


class TestStateDigest:
    def test_deterministic_and_sensitive(self):
        snap = {"cycle": 7, "regs": np.arange(8, dtype=np.uint32),
                "nested": {"b": [1, 2], "a": (3, None, True)}}
        again = {"cycle": 7, "regs": np.arange(8, dtype=np.uint32),
                 "nested": {"a": (3, None, True), "b": [1, 2]}}
        assert state_digest(snap) == state_digest(again)
        mutated = {"cycle": 7, "regs": np.arange(8, dtype=np.uint32),
                   "nested": {"b": [1, 2], "a": (3, None, True)}}
        mutated["regs"][3] ^= 1
        assert state_digest(snap) != state_digest(mutated)

    def test_type_tags_disambiguate(self):
        assert state_digest({"x": 1}) != state_digest({"x": True})
        assert state_digest({"x": 1}) != state_digest({"x": 1.0})
        assert state_digest({"x": "1"}) != state_digest({"x": b"1"})

    def test_checkpoints_carry_state_hash(self, tmp_path):
        from repro.sim.checkpoint import CheckpointRecorder

        recorder = CheckpointRecorder(tmp_path / "set", interval=50)
        dev = Device("RTX2060", RunOptions(checkpointer=recorder))
        out = dev.malloc(128)
        dev.launch(REG_KERNEL, grid=1, block=32, params=[out])
        recorder.finalize(dev.gpu.stats.launches, dev.cycle)
        assert recorder.checkpoints
        for entry in recorder.checkpoints:
            assert len(entry["state_hash"]) == 32  # blake2b-128 hex


REG_KERNEL = Kernel("live_regs", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    MOV R10, 0x55
    STG [R9], R10
    EXIT
""", num_params=1)

SMEM_KERNEL = Kernel("live_smem", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    MOV R10, 0x7
    STS [R3], R10
    LDS R12, [R3]
    EXIT
""", smem_bytes=128)


def trace_kernel(kernel, params=()):
    trace = LivenessTrace()
    dev = Device("RTX2060", RunOptions(liveness=trace))
    args = [dev.malloc(128)] if params is None else list(params)
    dev.launch(kernel, grid=1, block=32, params=args)
    return trace, dev


class TestLivenessTrace:
    """Unit tests on hand-written kernels with known lifetimes."""

    def setup_method(self):
        self.trace, self.dev = trace_kernel(REG_KERNEL, params=None)
        cta = self.trace.cores[0][0]
        self.age = cta["warps"][0]["age"]

    def events(self, reg):
        return self.trace.register_events(0, self.age, reg)

    def test_register_event_sequences(self):
        # R0: written by S2R, read by SHL, never touched again
        assert [k for _, k in self.events(0)] == ["k", "r"]
        # R10: written by MOV, read by STG
        assert [k for _, k in self.events(10)] == ["k", "r"]
        # R9: written by IADD, read (as STG address base) once
        assert [k for _, k in self.events(9)] == ["k", "r"]
        # a register the kernel never names has no events
        assert self.events(14) == []

    def test_register_dead_transitions(self):
        pre = Prescreener(self.trace, rtx_2060())
        (kill_cycle, _), (read_cycle, _) = self.events(10)
        assert kill_cycle < read_cycle
        # injected at the kill cycle: the write lands after the
        # injector and overwrites the flip -> dead
        assert pre._register_dead(0, self.age, 10, kill_cycle)
        # injected between the write and the last read: live
        assert not pre._register_dead(0, self.age, 10, kill_cycle + 1)
        assert not pre._register_dead(0, self.age, 10, read_cycle)
        # injected after the last read: dead forever
        assert pre._register_dead(0, self.age, 10, read_cycle + 1)
        # never-accessed registers are dead at any cycle
        assert pre._register_dead(0, self.age, 14, 0)

    def test_warp_retirement_recorded(self):
        wrec = self.trace.cores[0][0]["warps"][0]
        assert wrec["done_cycle"] is not None
        assert self.trace.live_warps(wrec["done_cycle"] + 1) == []

    def test_shared_word_lifetimes(self):
        trace, _dev = trace_kernel(SMEM_KERNEL)
        cta = trace.cores[0][0]
        age_base = cta["age_base"]
        for tid in (0, 7, 31):
            kinds = [k for _, k in
                     trace.smem_word_events(0, age_base, tid)]
            assert kinds == ["k", "r"], tid  # STS kill then LDS read
        # word 32 is beyond the 32 touched words: never accessed
        assert trace.smem_word_events(0, age_base, 32) == []

    def test_shared_prescreen_verdicts(self):
        trace, _dev = trace_kernel(SMEM_KERNEL)
        cta = trace.cores[0][0]
        (kill_cycle, _), (read_cycle, _) = trace.smem_word_events(
            0, cta["age_base"], 5)

        def mask_at(cycle):
            return FaultMask(structure=Structure.SHARED_MEM, cycle=cycle,
                             entry_index=5, bit_offsets=(3,), seed=1)

        pre = Prescreener(trace, rtx_2060())
        live = pre.evaluate(mask_at(read_cycle), 16, 128, 0)
        assert live is None  # flip lands before the LDS observes it
        dead = pre.evaluate(mask_at(read_cycle + 1), 16, 128, 0)
        assert dead is not None  # never read again
        overwritten = pre.evaluate(mask_at(kill_cycle), 16, 128, 0)
        assert overwritten is not None  # STS rewrites the word


class TestPrescreenSoundness:
    """Every pre-screened verdict must be confirmed by full
    simulation: Masked, with exactly the golden cycle count, and the
    resolver must have predicted the injector's spatial target."""

    @pytest.mark.parametrize("bench,structures,runs", [
        ("vectoradd", (Structure.REGISTER_FILE, Structure.L2_CACHE), 8),
        ("scalarprod", (Structure.SHARED_MEM, Structure.LOCAL_MEM), 4),
    ])
    def test_prescreened_runs_confirmed_by_simulation(
            self, tmp_path, bench, structures, runs):
        cfg = CampaignConfig(
            benchmark=bench, card="RTX2060", structures=structures,
            runs_per_structure=runs, seed=5, early_stop="full")
        campaign = Campaign(cfg)
        specs = campaign.plan()
        screened = [s for s in specs if s.prescreened]
        assert screened, "matrix entry produced no pre-screened run"

        prescreener = Prescreener(campaign._liveness, cfg.resolved_card(),
                                  cache_hook_mode=cfg.cache_hook_mode)
        for spec in screened:
            live_spec = dataclasses.replace(
                spec, early_stop="off", prescreened=False,
                prescreen_reason="")
            record = execute_run(live_spec)
            assert record["effect"] == "Masked", spec.key
            assert record["cycles"] == spec.golden_cycles, spec.key

            # the resolver's predicted target must equal the target the
            # injector actually picked from live state
            kp = campaign.profile.kernels[spec.kernel]
            mask = MaskGenerator(
                cfg.resolved_card(), list(spec.windows),
                kp.regs_per_thread, kp.smem_bytes, kp.local_bytes,
                np.random.default_rng(spec.seed)).generate(
                    spec.structure, n_bits=cfg.bits_per_fault,
                    mode=cfg.multibit_mode, warp_level=cfg.warp_level,
                    n_blocks=cfg.n_blocks, n_cores=cfg.n_cores)
            assert prescreener.evaluate(
                mask, kp.regs_per_thread, kp.smem_bytes,
                kp.local_bytes) is not None, spec.key
            injection = record["injections"][0]
            predicted = prescreener.last_target
            if spec.structure is Structure.REGISTER_FILE:
                assert injection["core"] == predicted["core"]
                assert injection["warp_age"] == predicted["warp_age"]
                assert injection["register"] == predicted["register"]
            elif spec.structure is Structure.LOCAL_MEM:
                if injection["target"] != "none":
                    assert injection["core"] == predicted["core"]
                    assert injection["warp_age"] == predicted["warp_age"]
                    assert injection["word"] == predicted["word"]
                    assert injection["lanes"] == predicted["lanes"]
            elif spec.structure is Structure.SHARED_MEM:
                if injection["target"] != "none":
                    got = [(b["core"], b["cta"], b["word"])
                           for b in injection["blocks"]]
                    want = [(b["core"], b["cta"], b["word"])
                           for b in predicted["blocks"]]
                    assert got == want


class TestProgressReporter:
    def test_instant_runs_excluded_from_eta(self):
        clock = iter([0.0] + [10.0] * 50)
        reporter = ProgressReporter(total=10, clock=lambda: next(clock),
                                    instant_total=5)
        # 4 simulated + 2 instant runs done in 10s
        for _ in range(4):
            reporter.record({"effect": "Masked"})
        for _ in range(2):
            reporter.record({"effect": "Masked", "prescreened": True})
        # 4 runs remain: 3 instant (free) + 1 simulated at 0.4/s
        assert reporter.eta_seconds() == pytest.approx(2.5)
        assert "pre-screened=2" in reporter.render()

    def test_early_stopped_counted(self):
        reporter = ProgressReporter(total=2)
        reporter.record({"effect": "Masked", "terminated_at": 120})
        assert reporter.early_stopped == 1
        assert "early-stopped=1" in reporter.render()
