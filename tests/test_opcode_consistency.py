"""Consistency of the opcode table, handlers, and latency coverage."""

import pytest

from repro.isa.opcodes import (ATOMIC_MODIFIERS, MUFU_MODIFIERS, OPCODES,
                               OpClass)
from repro.sim.exec_unit import HANDLERS, _MUFU_FN


class TestTableCompleteness:
    def test_every_alu_opcode_has_a_handler(self):
        for name, spec in OPCODES.items():
            if spec.klass in (OpClass.MOVE, OpClass.INT, OpClass.FLOAT,
                              OpClass.SFU, OpClass.PRED, OpClass.NOP):
                assert name in HANDLERS, f"{name} has no exec handler"

    def test_no_orphan_handlers(self):
        for name in HANDLERS:
            assert name in OPCODES

    def test_memory_and_control_have_no_alu_handler(self):
        for name, spec in OPCODES.items():
            if spec.is_memory or spec.is_control:
                assert name not in HANDLERS, name

    def test_mufu_functions_cover_modifiers(self):
        assert set(_MUFU_FN) == set(MUFU_MODIFIERS)

    def test_atomic_modifiers_supported_by_l2_rmw(self):
        from repro.sim.cards import rtx_2060
        from repro.sim.gpu import GPU

        gpu = GPU(rtx_2060())
        gpu.memory.malloc(64)
        for op in ATOMIC_MODIFIERS:
            gpu.l2_rmw(0x1000, op, 1)  # must not raise

    def test_memory_opcodes_declare_a_space(self):
        for name, spec in OPCODES.items():
            if spec.is_memory:
                assert spec.space, f"{name} missing memory space"
            else:
                assert not spec.space, name

    def test_loads_have_one_reg_dst(self):
        for name, spec in OPCODES.items():
            if spec.klass is OpClass.LOAD:
                assert spec.dsts == ("R",), name

    def test_stores_have_no_dst(self):
        for name, spec in OPCODES.items():
            if spec.klass is OpClass.STORE:
                assert spec.dsts == (), name

    def test_required_modifiers_within_declared(self):
        for name, spec in OPCODES.items():
            assert spec.required_modifiers <= len(spec.modifiers), name


class TestBenchmarksUseTheISA:
    def test_isa_coverage_by_workloads(self):
        """The 12 workloads collectively exercise most of the ISA."""
        from repro.bench import BENCHMARK_CLASSES

        used = set()
        for cls in BENCHMARK_CLASSES:
            for kernel in cls().kernels():
                used.update(inst.opcode for inst in kernel.instructions)
        expected = {"S2R", "MOV", "IADD", "ISUB", "IMUL", "IMAD", "IMNMX",
                    "SHL", "SHR", "AND", "ISETP", "FSETP", "FADD", "FMUL",
                    "FFMA", "FMNMX", "MUFU", "LDG", "STG", "TLD", "LDS",
                    "STS", "LDL", "STL", "LDC", "BRA", "BAR", "EXIT"}
        missing = expected - used
        assert not missing, f"workloads never use: {sorted(missing)}"
