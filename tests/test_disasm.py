"""Instruction/operand rendering and disassembly re-assembly."""

import pytest

from repro.isa import assemble
from repro.isa.operands import (ConstRef, Immediate, MemRef, PredRef,
                                RegRef, SpecialReg)

SOURCE = """
    S2R R0, SR_TID_X
    MOV R1, 0x10
    MOV R2, 1.5
@P0 IADD R3, R1, -R2
    ISETP.GE.AND P0, PT, R3, R1, PT
    LDG R4, [R3+0x20]
    LDC R5, c[0x8]
    STS [R3], R4
    FMNMX.MIN R6, R4, |R5|
    MUFU.RCP R7, R6
@!P0 BRA done
    BAR.SYNC
done:
    EXIT
"""


class TestOperandRendering:
    def test_register(self):
        assert str(RegRef(5)) == "R5"
        assert str(RegRef(255)) == "RZ"
        assert str(RegRef(3, negate=True)) == "-R3"
        assert str(RegRef(3, absolute=True)) == "|R3|"
        assert str(RegRef(3, negate=True, absolute=True)) == "-|R3|"

    def test_predicate(self):
        assert str(PredRef(0)) == "P0"
        assert str(PredRef(7)) == "PT"
        assert str(PredRef(2, negate=True)) == "!P2"

    def test_immediate(self):
        assert str(Immediate(5)) == "5"
        assert str(Immediate(255)) == "0xff"
        assert str(Immediate(0x3FC00000, is_float=True)) == "1.5"

    def test_memref(self):
        assert str(MemRef(RegRef(4), 0x10)) == "[R4+0x10]"
        assert str(MemRef(RegRef(4))) == "[R4]"
        assert str(MemRef(RegRef(255), 0x20)) == "[0x20]"

    def test_constref(self):
        assert str(ConstRef(8)) == "c[0x8]"

    def test_special(self):
        assert str(SpecialReg("SR_CTAID_Y")) == "SR_CTAID_Y"


class TestInstructionRendering:
    def test_guard_and_modifiers(self):
        insts = assemble(SOURCE)
        texts = [str(i) for i in insts]
        assert texts[0] == "S2R R0, SR_TID_X"
        assert texts[3] == "@P0 IADD R3, R1, -R2"
        assert texts[4] == "ISETP.GE.AND P0, PT, R3, R1, PT"
        assert texts[8] == "FMNMX.MIN R6, R4, |R5|"
        assert texts[11] == "BAR.SYNC"

    def test_disassembly_reassembles(self):
        """str(inst) must be valid assembly producing the same program
        (modulo label naming, which we regenerate per target PC)."""
        insts = assemble(SOURCE)
        lines = []
        targets = {i.target_pc for i in insts if i.is_branch}
        for inst in insts:
            if inst.pc in targets:
                lines.append(f"L{inst.pc}:")
            text = str(inst)
            if inst.is_branch:
                guard = f"@{inst.guard} " if inst.guard else ""
                text = f"{guard}BRA L{inst.target_pc}"
            lines.append(text)
        recycled = assemble("\n".join(lines))
        assert len(recycled) == len(insts)
        for old, new in zip(insts, recycled):
            assert old.opcode == new.opcode
            assert old.modifiers == new.modifiers
            assert old.target_pc == new.target_pc
            assert old.reconv_pc == new.reconv_pc
