"""GigaThread CTA scheduling, occupancy limits, launch statistics."""

import numpy as np
import pytest

from repro.sim.device import Device, RunOptions
from repro.sim.kernel import Kernel, KernelLaunch

COUNTER = Kernel("counter", """
    S2R R0, SR_CTAID_X
    S2R R2, SR_TID_X
    ISETP.NE.AND P0, PT, R2, RZ, PT
@P0 EXIT
    LDC R4, c[0x0]
    SHL R5, R0, 2
    IADD R5, R5, R4
    MOV R6, 1
    STG [R5], R6
    EXIT
""", num_params=1)


class TestOccupancyLimits:
    def make_kernel(self, smem=0, regs_body="    MOV R1, 1\n"):
        return Kernel("k", regs_body + "    EXIT", smem_bytes=smem)

    def test_thread_limit(self, device):
        launch = KernelLaunch.create(self.make_kernel(), grid=1, block=512)
        # 1024 threads/SM / 512 per CTA = 2 CTAs
        assert device.gpu.max_ctas_per_core(launch) == 2

    def test_cta_count_limit(self, device):
        launch = KernelLaunch.create(self.make_kernel(), grid=1, block=32)
        assert device.gpu.max_ctas_per_core(launch) == 32

    def test_smem_limit(self, device):
        kernel = self.make_kernel(smem=16 * 1024)  # 64 KB / 16 KB = 4
        launch = KernelLaunch.create(kernel, grid=1, block=32)
        assert device.gpu.max_ctas_per_core(launch) == 4

    def test_register_limit(self, device):
        body = "    MOV R255, 1\n"  # R255 is RZ -> invalid; use R254
        kernel = Kernel("k", "    MOV R254, 1\n    EXIT")
        launch = KernelLaunch.create(kernel, grid=1, block=256)
        # 255 regs * 256 threads = 65280 <= 65536 -> exactly 1 CTA
        assert device.gpu.max_ctas_per_core(launch) == 1

    def test_oversized_cta_rejected(self, device):
        kernel = self.make_kernel()
        launch = KernelLaunch.create(kernel, grid=1, block=(32, 64))
        with pytest.raises(ValueError, match="exceeds SM capacity"):
            device.gpu.max_ctas_per_core(launch)


class TestCTADistribution:
    def test_all_ctas_complete(self, device):
        out = device.malloc(4 * 64)
        device.launch(COUNTER, grid=64, block=32, params=[out])
        flags = device.read_array(out, (64,), np.uint32)
        assert (flags == 1).all()

    def test_small_grid_spreads_across_cores(self, device):
        out = device.malloc(4 * 8)
        stats = device.launch(COUNTER, grid=8, block=32, params=[out])
        assert len(stats.cores_used) == 8

    def test_grid_larger_than_chip_wraps(self, device):
        # 64 CTAs > 30 SMs: every SM used, some get two
        out = device.malloc(4 * 64)
        stats = device.launch(COUNTER, grid=64, block=32, params=[out])
        assert len(stats.cores_used) == 30

    def test_2d_grid_and_block(self, device):
        kernel = Kernel("k2d", """
    S2R R0, SR_CTAID_X
    S2R R1, SR_CTAID_Y
    S2R R2, SR_TID_X
    S2R R3, SR_TID_Y
    ISETP.NE.AND P0, PT, R2, RZ, PT
@P0 EXIT
    ISETP.NE.AND P0, PT, R3, RZ, PT
@P0 EXIT
    S2R R4, SR_NCTAID_X
    IMAD R5, R1, R4, R0      ; linear cta id
    LDC R6, c[0x0]
    SHL R7, R5, 2
    IADD R7, R7, R6
    MOV R8, 1
    STG [R7], R8
    EXIT
""", num_params=1)
        out = device.malloc(4 * 12)
        device.launch(kernel, grid=(4, 3), block=(8, 4), params=[out])
        assert (device.read_array(out, (12,), np.uint32) == 1).all()


class TestLaunchStats:
    def test_cycles_accumulate_across_launches(self, device):
        out = device.malloc(4 * 8)
        device.launch(COUNTER, grid=8, block=32, params=[out])
        first = device.cycle
        device.launch(COUNTER, grid=8, block=32, params=[out])
        assert device.cycle > first
        assert len(device.launches) == 2
        assert device.launches[1].start_cycle == first

    def test_occupancy_bounded(self, device):
        out = device.malloc(4 * 8)
        stats = device.launch(COUNTER, grid=8, block=32, params=[out])
        assert 0.0 < stats.occupancy <= 1.0

    def test_mean_threads_reflect_block_size(self, device):
        out = device.malloc(4 * 4)
        stats = device.launch(COUNTER, grid=4, block=32, params=[out])
        # one 32-thread CTA per SM; threads drain as warps exit
        assert 0 < stats.mean_threads_per_sm <= 32

    def test_instructions_counted(self, device):
        out = device.malloc(4)
        stats = device.launch(COUNTER, grid=1, block=32, params=[out])
        assert stats.instructions == len(COUNTER.instructions)

    def test_determinism(self):
        cycles = []
        for _ in range(2):
            dev = Device("RTX2060")
            out = dev.malloc(4 * 16)
            dev.launch(COUNTER, grid=16, block=32, params=[out])
            cycles.append(dev.cycle)
        assert cycles[0] == cycles[1]


class TestSchedulerPolicies:
    def _run(self, policy):
        dev = Device("RTX2060", RunOptions(scheduler_policy=policy))
        bench_out = dev.malloc(4 * 64)
        dev.launch(COUNTER, grid=64, block=32, params=[bench_out])
        return dev.cycle

    def test_lrr_and_gto_both_complete(self):
        assert self._run("gto") > 0
        assert self._run("lrr") > 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            RunOptions(scheduler_policy="fifo")


class TestKernelLaunchValidation:
    def test_param_count_enforced(self):
        with pytest.raises(ValueError, match="expects 1 parameter"):
            KernelLaunch.create(COUNTER, grid=1, block=32, params=[])

    def test_float_params_packed_as_bits(self):
        kernel = Kernel("k", "    EXIT", num_params=1)
        launch = KernelLaunch.create(kernel, grid=1, block=32, params=[1.0])
        assert launch.params[0] == 0x3F800000

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            KernelLaunch.create(COUNTER, grid=0, block=32, params=[0])

    def test_warps_per_cta_rounds_up(self):
        kernel = Kernel("k", "    EXIT")
        launch = KernelLaunch.create(kernel, grid=1, block=33)
        assert launch.warps_per_cta == 2
