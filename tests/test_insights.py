"""Campaign-log insight mining."""

import pytest

from repro.analysis.insights import (bit_position_sensitivity,
                                     field_breakdown, phase_histogram,
                                     render_sensitivity, target_breakdown)
from repro.faults.targets import Structure


def record(effect="SDC", bits=(3,), cycle=100, golden=1000,
           structure="register_file", target="thread", fields=(),
           synthesized=False):
    injections = []
    if target:
        injection = {"target": target}
        if fields:
            injection["flips"] = [{"field": f} for f in fields]
        injections.append(injection)
    return {
        "effect": effect,
        "structure": structure,
        "golden_cycles": golden,
        "synthesized": synthesized,
        "mask": {"bit_offsets": list(bits), "cycle": cycle},
        "injections": injections,
    }


class TestBitSensitivity:
    def test_counts_per_bit(self):
        records = [record(bits=(3,)), record(bits=(3,), effect="Masked"),
                   record(bits=(7,), effect="Crash")]
        out = bit_position_sensitivity(records)
        assert out[3] == (2, 1)
        assert out[7] == (1, 1)

    def test_bucketing(self):
        records = [record(bits=(0,)), record(bits=(7,), effect="Masked")]
        out = bit_position_sensitivity(records, bucket=8)
        assert out == {0: (2, 1)}

    def test_structure_filter(self):
        records = [record(structure="register_file"),
                   record(structure="l2_cache", bits=(9,))]
        out = bit_position_sensitivity(records, Structure.L2_CACHE)
        assert list(out) == [9]

    def test_synthesized_excluded(self):
        out = bit_position_sensitivity([record(synthesized=True)])
        assert out == {}

    def test_multibit_counts_each_bit(self):
        out = bit_position_sensitivity([record(bits=(1, 2, 3))])
        assert len(out) == 3

    def test_render(self):
        text = render_sensitivity(bit_position_sensitivity(
            [record(bits=(3,)), record(bits=(3,), effect="Masked")]))
        assert "bit    3" in text and "1/2" in text

    def test_render_empty(self):
        assert "no applicable" in render_sensitivity({})


class TestFieldBreakdown:
    def test_tag_vs_data(self):
        records = [record(structure="l2_cache", fields=("tag",),
                          effect="Performance"),
                   record(structure="l2_cache", fields=("data",),
                          effect="SDC"),
                   record(structure="l2_cache", target="none")]
        out = field_breakdown(records, Structure.L2_CACHE)
        assert out["tag"] == {"Performance": 1}
        assert out["data"] == {"SDC": 1}
        assert out["none"] == {"SDC": 1}  # default effect in helper

    def test_mixed_fields(self):
        out = field_breakdown([record(fields=("tag", "data"))])
        assert "data+tag" in out


class TestPhaseHistogram:
    def test_binning(self):
        records = [record(cycle=50, golden=1000),           # phase 0.05
                   record(cycle=950, golden=1000,
                          effect="Masked")]                 # phase 0.95
        hist = phase_histogram(records, bins=10)
        assert hist[0][1:] == (1, 1)
        assert hist[9][1:] == (1, 0)

    def test_cycle_at_end_clamped(self):
        hist = phase_histogram([record(cycle=1000, golden=1000)], bins=4)
        assert hist[3][1] == 1

    def test_missing_golden_skipped(self):
        hist = phase_histogram([record(golden=0)], bins=4)
        assert all(runs == 0 for _, runs, _ in hist)


class TestTargetBreakdown:
    def test_counts(self):
        records = [record(target="thread"), record(target="warp"),
                   record(target="none"), record(synthesized=True)]
        out = target_breakdown(records)
        assert out == {"thread": 1, "warp": 1, "none": 1,
                       "synthesized": 1}

    def test_unapplied(self):
        rec = record()
        rec["injections"] = []
        assert target_breakdown([rec]) == {"not_applied": 1}


class TestOnRealCampaign:
    def test_end_to_end(self):
        from repro.faults.campaign import Campaign, CampaignConfig

        result = Campaign(CampaignConfig(
            benchmark="vectoradd", card="RTX2060",
            structures=(Structure.REGISTER_FILE,),
            runs_per_structure=10, seed=17)).run()
        sensitivity = bit_position_sensitivity(result.records, bucket=8)
        assert sum(runs for runs, _ in sensitivity.values()) == 10
        targets = target_breakdown(result.records)
        assert targets.get("thread", 0) + targets.get("none", 0) + \
            targets.get("not_applied", 0) == 10
        hist = phase_histogram(result.records, bins=5)
        assert sum(runs for _, runs, _ in hist) == 10
