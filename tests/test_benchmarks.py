"""The twelve workloads: fault-free correctness on every card,
registry behaviour, golden-model sanity and SDC sensitivity."""

import numpy as np
import pytest

from repro.bench import (BENCHMARK_CLASSES, benchmark_names, make_benchmark)
from repro.faults.injector import Injector
from repro.faults.mask import FaultMask
from repro.faults.targets import Structure
from repro.sim.device import Device

ALL_CARDS = ("RTX2060", "QuadroGV100", "GTXTitan")


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARK_CLASSES) == 12
        assert len(benchmark_names()) == 12

    def test_paper_abbreviations(self):
        abbrevs = {cls.abbrev for cls in BENCHMARK_CLASSES}
        assert abbrevs == {"HS", "KM", "SRAD1", "SRAD2", "LUD", "BFS",
                           "PATHF", "NW", "GE", "BP", "VA", "SP"}

    def test_lookup_by_abbrev(self):
        assert make_benchmark("hs").name == "hotspot"

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            make_benchmark("doom")

    def test_kernels_exposed(self):
        for cls in BENCHMARK_CLASSES:
            kernels = cls().kernels()
            assert kernels, cls.name
            for kernel in kernels:
                assert kernel.instructions  # assembles cleanly


@pytest.mark.parametrize("card", ALL_CARDS)
@pytest.mark.parametrize("cls", BENCHMARK_CLASSES,
                         ids=[c.abbrev for c in BENCHMARK_CLASSES])
class TestFaultFree:
    def test_passes_on_card(self, cls, card):
        bench = cls()
        dev = Device(card)
        assert bench.run(dev) is True
        assert dev.cycle > 0


class TestDeterminism:
    @pytest.mark.parametrize("name", ["vectoradd", "bfs", "hotspot"])
    def test_cycle_deterministic(self, name):
        cycles = set()
        for _ in range(2):
            dev = Device("RTX2060")
            make_benchmark(name).run(dev)
            cycles.add(dev.cycle)
        assert len(cycles) == 1


class TestSDCSensitivity:
    """A deliberately corrupted input word must fail the check --
    the golden comparison actually has teeth."""

    @pytest.mark.parametrize("name,state_key,offset,dtype", [
        ("vectoradd", "pa", 0, np.float32),
        # poison the final wall row: earlier rows can be healed by the
        # min() (algorithmic masking), the last one is directly visible
        ("pathfinder", "p_wall", 4 * 512 * 7, np.int32),
        ("needle", "p_ref", 0, np.int32),
    ])
    def test_corrupted_input_fails(self, name, state_key, offset, dtype):
        bench = make_benchmark(name)
        dev = Device("RTX2060")
        state = bench.build(dev)
        poison = np.array([123456789], dtype=dtype)
        dev.memcpy_htod(state[state_key] + offset, poison)
        bench.execute(dev, state)
        assert bench.check(dev, state) is False

    def test_register_fault_campaign_finds_failures(self):
        """A small seeded RF campaign on a loop-heavy workload must
        observe at least one failing outcome (kmeans keeps pointers
        and accumulators live for most of the kernel)."""
        from repro.faults.campaign import Campaign, CampaignConfig

        result = Campaign(CampaignConfig(
            benchmark="kmeans", card="RTX2060",
            structures=(Structure.REGISTER_FILE,),
            runs_per_structure=10, seed=4)).run()
        assert result.failures("kmeansPoint",
                               Structure.REGISTER_FILE) >= 1
