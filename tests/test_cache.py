"""Cache model: geometry, LRU, writeback, fault flips, hook mode."""

import numpy as np
import pytest

from repro.sim.cache import Cache
from repro.sim.config import CacheGeometry


def make_cache(size=4 * 1024, line=128, assoc=2, tag_bits=57) -> Cache:
    return Cache("test", CacheGeometry(size, line_bytes=line, assoc=assoc),
                 tag_bits)


def line_data(byte: int, line=128) -> np.ndarray:
    return np.full(line, byte, dtype=np.uint8)


class TestGeometry:
    def test_counts(self):
        cache = make_cache()
        assert cache.geometry.num_lines == 32
        assert cache.geometry.num_sets == 16

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(1000, line_bytes=128, assoc=4)

    def test_injectable_bits_include_tags(self):
        cache = make_cache()
        assert cache.injectable_bits == 32 * (128 * 8 + 57)
        assert cache.bits_per_line == 1081

    def test_line_base(self):
        cache = make_cache()
        assert cache.line_base(0x1234) == 0x1200


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(0x1000) is None
        cache.fill(0x1000, line_data(7))
        line = cache.lookup(0x1040)  # same line, different word
        assert line is not None
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_different_sets_do_not_conflict(self):
        cache = make_cache()
        cache.fill(0x0000, line_data(1))
        cache.fill(0x0080, line_data(2))  # next set
        assert cache.lookup(0x0000) is not None
        assert cache.lookup(0x0080) is not None

    def test_lru_eviction(self):
        cache = make_cache(assoc=2)
        set_stride = cache.geometry.num_sets * 128
        a, b, c = 0, set_stride, 2 * set_stride  # all map to set 0
        cache.fill(a, line_data(1))
        cache.fill(b, line_data(2))
        cache.lookup(a)  # touch a so b is LRU
        cache.fill(c, line_data(3))  # evicts b
        assert cache.peek(a) is not None
        assert cache.peek(b) is None
        assert cache.peek(c) is not None

    def test_dirty_eviction_returns_writeback(self):
        cache = make_cache(assoc=1)
        set_stride = cache.geometry.num_sets * 128
        cache.fill(0, line_data(1))
        line = cache.peek(0)
        cache.write_word(line, 0, 0xDEADBEEF)
        writeback = cache.fill(set_stride, line_data(2))
        assert writeback is not None
        addr, data = writeback
        assert addr == 0
        assert data[:4].view("<u4")[0] == 0xDEADBEEF

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(assoc=1)
        set_stride = cache.geometry.num_sets * 128
        cache.fill(0, line_data(1))
        assert cache.fill(set_stride, line_data(2)) is None

    def test_word_read_write(self):
        cache = make_cache()
        cache.fill(0x100, line_data(0))
        line = cache.peek(0x100)
        cache.write_word(line, 0x104, 1234)
        assert cache.read_word(line, 0x104) == 1234
        assert line.dirty

    def test_invalidate_returns_dirty_data(self):
        cache = make_cache()
        cache.fill(0x100, line_data(0))
        cache.write_word(cache.peek(0x100), 0x100, 55)
        writeback = cache.invalidate(0x100)
        assert writeback is not None and cache.peek(0x100) is None

    def test_flush_keeps_lines_valid(self):
        cache = make_cache()
        cache.fill(0x100, line_data(0))
        cache.write_word(cache.peek(0x100), 0x100, 55)
        out = cache.flush()
        assert len(out) == 1
        line = cache.peek(0x100)
        assert line is not None and not line.dirty

    def test_invalidate_all(self):
        cache = make_cache()
        cache.fill(0x100, line_data(0))
        cache.fill(0x200, line_data(0))
        cache.invalidate_all()
        assert cache.peek(0x100) is None and cache.peek(0x200) is None

    def test_hit_rate(self):
        cache = make_cache()
        cache.fill(0x0, line_data(0))
        cache.lookup(0x0)
        cache.lookup(0x0)
        cache.lookup(0x80)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)


class TestFaultFlips:
    def test_data_flip_changes_word(self):
        cache = make_cache()
        cache.fill(0, line_data(0))
        record = cache.flip_bit(0, 57)  # first data bit of line 0 way 0
        assert record["field"] == "data" and record["valid"]
        assert cache.read_word(cache.peek(0), 0) == 1

    def test_tag_flip_causes_miss(self):
        cache = make_cache()
        cache.fill(0, line_data(0))
        cache.flip_bit(0, 0)  # tag bit
        assert cache.peek(0) is None  # tag no longer matches

    def test_flip_invalid_line_is_masked(self):
        cache = make_cache()
        record = cache.flip_bit(5, 100)
        assert record["valid"] is False

    def test_double_flip_restores(self):
        cache = make_cache()
        cache.fill(0, line_data(0xFF))
        cache.flip_bit(0, 60)
        cache.flip_bit(0, 60)
        assert cache.read_word(cache.peek(0), 0) == 0xFFFFFFFF

    def test_flip_bounds_checked(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.flip_bit(999, 0)
        with pytest.raises(ValueError):
            cache.flip_bit(0, cache.bits_per_line)

    def test_flat_line_numbering_covers_all_ways(self):
        cache = make_cache(assoc=2)
        seen = set()
        for idx in range(cache.geometry.num_lines):
            seen.add(id(cache.line_by_index(idx)))
        assert len(seen) == cache.geometry.num_lines


class TestHookMode:
    def test_hook_applies_on_read_hit(self):
        cache = make_cache()
        cache.fill(0, line_data(0))
        cache.arm_hook(0, [57])
        assert cache.read_word(cache.peek(0), 0) == 0  # peek: no trigger
        line = cache.lookup(0)
        assert cache.read_word(line, 0) == 1
        assert line.armed is None

    def test_hook_dropped_on_write_hit(self):
        cache = make_cache()
        cache.fill(0, line_data(0))
        cache.arm_hook(0, [57])
        line = cache.lookup(0, for_write=True)
        assert line.armed is None
        assert cache.read_word(line, 0) == 0  # flip never applied

    def test_hook_not_armed_on_invalid_line(self):
        cache = make_cache()
        record = cache.arm_hook(3, [57])
        assert record["valid"] is False
        assert cache.line_by_index(3).armed is None

    def test_hook_dropped_on_refill(self):
        cache = make_cache(assoc=1)
        set_stride = cache.geometry.num_sets * 128
        cache.fill(0, line_data(0))
        cache.arm_hook(0, [57])
        cache.fill(set_stride, line_data(9))  # replaces the hooked line
        line = cache.lookup(set_stride)
        assert cache.read_word(line, set_stride) == 0x09090909
