"""Distributed campaign fabric: shards, leases, dedup, byte-identity.

The headline invariant under test: a fleet of N workers produces a
merged log that is byte-identical -- after canonical sort, minus the
volatile ``timings``/``worker`` keys -- to a local ``--jobs N`` run of
the same plan (see :mod:`repro.dist.protocol`).
"""

import json
import re
import threading

import pytest

from repro.dist.client import DispatchError, DispatcherClient
from repro.dist.protocol import (canonical_log_text, canonical_records,
                                 plan_fingerprint, plan_shards,
                                 record_key, spec_from_wire,
                                 spec_to_wire, strip_volatile)
from repro.dist.server import Dispatcher, DispatcherServer
from repro.dist.worker import FleetWorker
from repro.faults.campaign import Campaign, CampaignConfig, aggregate_counts
from repro.faults.config_file import dump_config
from repro.faults.executor import execute_run
from repro.faults.targets import Structure

SMALL = dict(benchmark="vectoradd", card="RTX2060",
             structures=(Structure.REGISTER_FILE,),
             runs_per_structure=4, seed=3)


@pytest.fixture(scope="module")
def small_plan():
    return Campaign(CampaignConfig(**SMALL)).plan()


@pytest.fixture(scope="module")
def small_records(small_plan):
    """The ground truth: every run executed locally, in plan order."""
    return [execute_run(spec) for spec in small_plan]


def fake_record(spec):
    """A plausible record without running any simulation (scheduling
    tests care about keys and counts, not physics)."""
    return {"kernel": spec.kernel, "structure": spec.structure.value,
            "run": spec.run_index, "effect": "Masked"}


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def small_config_text(**overrides):
    return dump_config(CampaignConfig(**{**SMALL, **overrides}))


class TestShardPlanning:
    def test_exact_partition_for_any_shard_size(self, small_plan):
        for size in range(1, len(small_plan) + 3):
            shards = plan_shards(small_plan, size)
            flat = [spec for shard in shards for spec in shard]
            assert flat == list(small_plan)  # every run, exactly once
            assert all(len(shard) <= size for shard in shards)
            assert all(len(shard) == size for shard in shards[:-1])

    def test_partition_is_pure_function_of_plan(self, small_plan):
        first = plan_shards(small_plan, 3)
        second = plan_shards(small_plan, 3)
        assert [[s.key for s in shard] for shard in first] == \
               [[s.key for s in shard] for shard in second]

    def test_invalid_shard_size(self, small_plan):
        with pytest.raises(ValueError, match="shard_size"):
            plan_shards(small_plan, 0)


class TestWireFormat:
    def test_spec_round_trips_through_json(self, small_plan):
        for spec in small_plan:
            wire = json.loads(json.dumps(spec_to_wire(spec)))
            assert spec_from_wire(wire) == spec

    def test_unknown_keys_ignored(self, small_plan):
        wire = spec_to_wire(small_plan[0])
        wire["from_the_future"] = {"x": 1}
        assert spec_from_wire(wire) == small_plan[0]


class TestFingerprint:
    def test_order_independent(self, small_plan):
        assert plan_fingerprint(small_plan) == \
               plan_fingerprint(list(reversed(small_plan)))

    def test_seed_changes_fingerprint(self, small_plan):
        other = Campaign(CampaignConfig(**{**SMALL, "seed": 4})).plan()
        assert plan_fingerprint(other) != plan_fingerprint(small_plan)

    def test_subset_changes_fingerprint(self, small_plan):
        assert plan_fingerprint(small_plan[:-1]) != \
               plan_fingerprint(small_plan)


class TestCanonicalForm:
    def test_dedup_strip_sort(self):
        records = [
            {"kernel": "k", "structure": "s", "run": 1, "effect": "SDC",
             "timings": {"total_s": 9.9}, "worker": "w1"},
            {"kernel": "k", "structure": "s", "run": 0, "effect": "Masked"},
            {"kernel": "k", "structure": "s", "run": 1, "effect": "SDC",
             "worker": "w2"},  # re-executed shard: same run, new worker
        ]
        canonical = canonical_records(records)
        assert [record_key(r) for r in canonical] == [
            ("k", "s", 0), ("k", "s", 1)]
        assert all("timings" not in r and "worker" not in r
                   for r in canonical)

    def test_text_ignores_jobs_and_order(self, small_records):
        shuffled = list(reversed(small_records))
        assert canonical_log_text(shuffled) == \
               canonical_log_text(small_records)


class TestDispatcherCore:
    """Scheduling semantics, no HTTP, no simulation (fake records)."""

    def make(self, tmp_path, **kwargs):
        clock = FakeClock()
        dispatcher = Dispatcher(log_dir=tmp_path / "logs", clock=clock,
                                **kwargs)
        return dispatcher, clock

    def drain(self, dispatcher, worker, limit=100):
        """Lease-execute-collect until idle; returns shards served."""
        served = 0
        for _ in range(limit):
            lease = dispatcher.lease(worker)
            if lease.get("idle"):
                return served
            specs = [spec_from_wire(w) for w in lease["specs"]]
            dispatcher.collect(
                lease["campaign"], lease["lease"], lease["fingerprint"],
                [fake_record(s) for s in specs], done=True, worker=worker)
            served += 1
        raise AssertionError("dispatcher never went idle")

    def test_resubmit_is_deduplicated(self, tmp_path):
        dispatcher, _ = self.make(tmp_path)
        first = dispatcher.submit(small_config_text())
        second = dispatcher.submit(small_config_text())
        assert second == {"campaign": first["campaign"], "reused": True,
                          "total": first["total"]}

    def test_rejects_remote_backend_submission(self, tmp_path):
        dispatcher, _ = self.make(tmp_path)
        text = small_config_text() + "-gpufi_backend remote\n" \
            "-gpufi_backend_url http://elsewhere:1\n"
        with pytest.raises(ValueError, match="local backend"):
            dispatcher.submit(text)

    def test_round_robin_across_campaigns(self, tmp_path):
        dispatcher, _ = self.make(tmp_path, shard_size=1)
        a = dispatcher.submit(small_config_text(seed=1))["campaign"]
        b = dispatcher.submit(small_config_text(seed=2))["campaign"]
        first_four = [dispatcher.lease("w")["campaign"] for _ in range(4)]
        # fair alternation: neither campaign is starved behind the other
        assert first_four == [a, b, a, b]

    def test_worker_arrival_order_is_irrelevant(self, tmp_path):
        results = []
        for order in (("w1", "w2"), ("w2", "w1")):
            root = tmp_path / "-".join(order)
            dispatcher = Dispatcher(log_dir=root, shard_size=2)
            cid = dispatcher.submit(small_config_text())["campaign"]
            for worker in order * 4:
                lease = dispatcher.lease(worker)
                if lease.get("idle"):
                    continue
                specs = [spec_from_wire(w) for w in lease["specs"]]
                dispatcher.collect(
                    cid, lease["lease"], lease["fingerprint"],
                    [fake_record(s) for s in specs], done=True,
                    worker=worker)
            assert dispatcher.status(cid)["state"] == "complete"
            results.append(canonical_log_text(
                dispatcher.records(cid)["records"]))
        assert results[0] == results[1]

    def test_expired_lease_requeues_shard_and_dedups(self, tmp_path):
        dispatcher, clock = self.make(tmp_path, shard_size=2,
                                      lease_timeout=10.0)
        cid = dispatcher.submit(small_config_text())["campaign"]
        stale = dispatcher.lease("w-dead")
        clock.advance(11.0)  # w-dead goes silent past the timeout
        fresh = dispatcher.lease("w-live")
        # the lost shard is re-queued first, ahead of the backlog
        assert fresh["shard"] == stale["shard"]
        assert fresh["lease"] != stale["lease"]
        specs = [spec_from_wire(w) for w in stale["specs"]]
        records = [fake_record(s) for s in specs]
        # the dead worker's records still arrive (slow network, not
        # dead after all): accepted, because they are correct
        late = dispatcher.collect(cid, stale["lease"],
                                  stale["fingerprint"], records,
                                  done=True, worker="w-dead")
        assert late["expired"] and late["accepted"] == len(records)
        # the replacement re-executes: everything deduplicates
        again = dispatcher.collect(cid, fresh["lease"],
                                   fresh["fingerprint"], records,
                                   done=True, worker="w-live")
        assert again["accepted"] == 0
        self.drain(dispatcher, "w-live")
        status = dispatcher.status(cid)
        assert status["state"] == "complete"
        # identical classification counts to an undisturbed execution
        plan = Campaign(CampaignConfig(**SMALL)).plan()
        expected = aggregate_counts([fake_record(s) for s in plan])
        got = aggregate_counts(dispatcher.records(cid)["records"])
        assert got == expected

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        dispatcher, clock = self.make(tmp_path, lease_timeout=10.0)
        cid = dispatcher.submit(small_config_text())["campaign"]
        lease = dispatcher.lease("w")
        for _ in range(5):
            clock.advance(8.0)
            assert dispatcher.heartbeat(lease["lease"])["ok"]
        # 40 fake seconds later the lease is still the worker's
        assert dispatcher.status(cid)["shards"]["leased"] == 1
        clock.advance(11.0)
        assert dispatcher.heartbeat(lease["lease"]) == {
            "ok": False, "expired": True}

    def test_collect_rejects_foreign_fingerprint(self, tmp_path):
        dispatcher, _ = self.make(tmp_path)
        cid = dispatcher.submit(small_config_text())["campaign"]
        lease = dispatcher.lease("w")
        with pytest.raises(ValueError, match="refusing to mix"):
            dispatcher.collect(cid, lease["lease"], "0" * 64,
                               [], done=False)

    def test_collect_rejects_unknown_campaign(self, tmp_path):
        dispatcher, _ = self.make(tmp_path)
        with pytest.raises(KeyError):
            dispatcher.collect("c999", "l", "f", [])

    def test_collect_rejects_record_outside_plan(self, tmp_path):
        dispatcher, _ = self.make(tmp_path)
        cid = dispatcher.submit(small_config_text())["campaign"]
        lease = dispatcher.lease("w")
        alien = {"kernel": "nope", "structure": "register_file",
                 "run": 0, "effect": "Masked"}
        with pytest.raises(ValueError, match="not part of campaign"):
            dispatcher.collect(cid, lease["lease"],
                               lease["fingerprint"], [alien])

    def test_restart_resumes_from_persisted_state(self, tmp_path):
        root = tmp_path / "logs"
        dispatcher = Dispatcher(log_dir=root, shard_size=2)
        cid = dispatcher.submit(small_config_text())["campaign"]
        lease = dispatcher.lease("w")
        specs = [spec_from_wire(w) for w in lease["specs"]]
        dispatcher.collect(cid, lease["lease"], lease["fingerprint"],
                           [fake_record(s) for s in specs], done=True,
                           worker="w")
        done_before = dispatcher.status(cid)["done"]
        assert 0 < done_before < dispatcher.status(cid)["total"]

        # the dispatcher process dies; a new one starts on the same dir
        revived = Dispatcher(log_dir=root, shard_size=2)
        status = revived.status(cid)
        assert status["done"] == done_before
        assert status["shards"]["complete"] == 1
        # only the missing shard remains; finishing it completes the
        # campaign with exactly one record per run
        self.drain(revived, "w2")
        final = revived.status(cid)
        assert final["state"] == "complete"
        records = revived.records(cid)["records"]
        assert len(records) == final["total"]
        assert len({record_key(r) for r in records}) == len(records)
        # and the revived server allocates fresh ids after the old ones
        other = revived.submit(small_config_text(seed=99))["campaign"]
        assert other != cid

    def test_completion_writes_metrics_sidecar(self, tmp_path):
        dispatcher, _ = self.make(tmp_path)
        cid = dispatcher.submit(
            small_config_text(metrics=True))["campaign"]
        self.drain(dispatcher, "w")
        sidecar = (tmp_path / "logs" / f"{cid}.jsonl.metrics.json")
        candidates = list((tmp_path / "logs").glob("*.metrics.json"))
        assert sidecar.exists() or candidates, \
            "no metrics sidecar written at completion"


class TestDispatcherTelemetry:
    """Event journaling, cursor pages, /metrics -- still no HTTP."""

    make = TestDispatcherCore.make
    drain = TestDispatcherCore.drain

    def test_events_bracket_the_campaign(self, tmp_path):
        dispatcher, _ = self.make(tmp_path, shard_size=2)
        cid = dispatcher.submit(small_config_text())["campaign"]
        self.drain(dispatcher, "w")
        page = dispatcher.events(cid)
        events = page["events"]
        assert events[0]["event"] == "campaign_start"
        assert events[0]["schema"] >= 2
        assert events[-1]["event"] == "campaign_end"
        assert events[-1]["complete"]
        runs = [e for e in events if e["event"] == "run"]
        assert len(runs) == SMALL["runs_per_structure"]
        # the trace chain threads campaign -> shard -> run
        trace = page["trace"]
        assert trace.startswith(cid + "@")
        assert all(r["trace"].startswith(f"{trace}/s") for r in runs)
        leased = [e for e in events if e["event"] == "shard_leased"]
        assert {e["shard"] for e in leased} == {0, 1}
        assert all(e["trace"] == f"{trace}/s{e['shard']}.g1"
                   for e in leased)

    def test_events_cursor_pages_are_resumable(self, tmp_path):
        dispatcher, _ = self.make(tmp_path)
        cid = dispatcher.submit(small_config_text())["campaign"]
        self.drain(dispatcher, "w")
        whole = dispatcher.events(cid)
        collected, cursor = [], 0
        while True:
            page = dispatcher.events(cid, cursor=cursor, limit=2)
            assert page["cursor"] == cursor
            if not page["events"]:
                break
            collected.extend(page["events"])
            cursor = page["next"]
        assert collected == whole["events"]
        assert cursor == whole["total"]

    def test_events_unknown_campaign_raises(self, tmp_path):
        dispatcher, _ = self.make(tmp_path)
        with pytest.raises(KeyError):
            dispatcher.events("c404")

    def test_recovered_lease_journals_each_run_once(self, tmp_path):
        dispatcher, clock = self.make(tmp_path, shard_size=2,
                                      lease_timeout=10.0)
        cid = dispatcher.submit(small_config_text())["campaign"]
        stale = dispatcher.lease("w-dead")
        clock.advance(11.0)
        fresh = dispatcher.lease("w-live")  # reap + re-queue
        assert fresh["shard"] == stale["shard"]
        specs = [spec_from_wire(w) for w in stale["specs"]]
        records = [fake_record(s) for s in specs]
        run_events = [{"event": "run", "worker": name, **r}
                      for name, r in
                      [("w-dead", records[0]), ("w-dead", records[1])]]
        dispatcher.collect(cid, stale["lease"], stale["fingerprint"],
                           records, done=True, worker="w-dead",
                           events=run_events)
        # the replacement re-delivers the exact same runs
        relived = [{**e, "worker": "w-live"} for e in run_events]
        dispatcher.collect(cid, fresh["lease"], fresh["fingerprint"],
                           records, done=True, worker="w-live",
                           events=relived)
        self.drain(dispatcher, "w-live")
        events = dispatcher.events(cid)["events"]
        runs = [e for e in events if e["event"] == "run"]
        keys = [record_key(e) for e in runs]
        assert len(keys) == len(set(keys)) == SMALL["runs_per_structure"]
        # first delivery wins, matching canonical_records
        by_key = {record_key(e): e["worker"] for e in runs}
        for record in records:
            assert by_key[record_key(record)] == "w-dead"
        expired = [e for e in events if e["event"] == "lease_expired"]
        assert len(expired) == 1 and expired[0]["shard"] == 0

    def test_worker_without_events_gets_synthesized_runs(self, tmp_path):
        dispatcher, _ = self.make(tmp_path)
        cid = dispatcher.submit(small_config_text())["campaign"]
        self.drain(dispatcher, "w-old")  # old worker: no events field
        runs = [e for e in dispatcher.events(cid)["events"]
                if e["event"] == "run"]
        assert len(runs) == SMALL["runs_per_structure"]
        assert all(e["worker"] == "w-old" and e["trace"] for e in runs)

    def test_restart_appends_campaign_resume_to_journal(self, tmp_path):
        root = tmp_path / "logs"
        dispatcher = Dispatcher(log_dir=root, shard_size=2)
        cid = dispatcher.submit(small_config_text())["campaign"]
        lease = dispatcher.lease("w")
        specs = [spec_from_wire(w) for w in lease["specs"]]
        dispatcher.collect(cid, lease["lease"], lease["fingerprint"],
                           [fake_record(s) for s in specs], done=True,
                           worker="w")
        before = dispatcher.events(cid)["events"]

        revived = Dispatcher(log_dir=root, shard_size=2)
        events = revived.events(cid)["events"]
        # the journal survived the restart and grew a resume marker
        assert [e["event"] for e in events[:len(before)]] == \
               [e["event"] for e in before]
        assert events[len(before)]["event"] == "campaign_resume"
        assert events[len(before)]["resumed"] == len(specs)
        self.drain(revived, "w2")
        final = revived.events(cid)["events"]
        runs = [e for e in final if e["event"] == "run"]
        keys = [record_key(e) for e in runs]
        # pre-restart runs were not re-journaled after the resume
        assert len(keys) == len(set(keys)) == SMALL["runs_per_structure"]
        assert final[-1]["event"] == "campaign_end"

    def test_metrics_exposition_lints_clean(self, tmp_path):
        from repro.obs.live import (lint_prometheus,
                                    required_families_present)

        dispatcher, _ = self.make(tmp_path)
        cid = dispatcher.submit(small_config_text())["campaign"]
        text = dispatcher.metrics_text()
        assert lint_prometheus(text) == []
        self.drain(dispatcher, "w")
        text = dispatcher.metrics_text()
        assert lint_prometheus(text) == []
        assert required_families_present(text, [
            "gpufi_uptime_seconds", "gpufi_campaigns", "gpufi_shards",
            "gpufi_runs_total", "gpufi_run_effects_total",
            "gpufi_leases_granted_total", "gpufi_lease_expired_total",
            "gpufi_workers", "gpufi_worker_runs_total"]) == []
        assert 'state="complete"' in text
        assert re.search(r"gpufi_runs_total \d", text)
        assert 'gpufi_worker_runs_total{worker="w"} 4' in text
        assert dispatcher.status(cid)["state"] == "complete"

    def test_sidecar_dist_section_matches_journal(self, tmp_path):
        from repro.obs.live import summarize_dist_events

        dispatcher, _ = self.make(tmp_path)
        cid = dispatcher.submit(
            small_config_text(metrics=True))["campaign"]
        self.drain(dispatcher, "w")
        sidecar = tmp_path / "logs" / f"{cid}.jsonl.metrics.json"
        doc = json.loads(sidecar.read_text(encoding="utf-8"))
        dist = doc["dist"]
        events = dispatcher.events(cid)["events"]
        summary = summarize_dist_events(events)
        # offline report numbers == what a live tail aggregated
        assert dist["events"] == summary["events"]
        assert dist["workers"] == summary["workers"]
        assert dist["campaign"] == cid
        assert dist["shards"]["complete"] == dist["shards"]["total"]


class TestFleetEndToEnd:
    """Real HTTP, real workers, real simulation: the headline test."""

    def run_fleet(self, tmp_path, config, n_workers=2, shard_size=2):
        dispatcher = Dispatcher(log_dir=tmp_path / "server",
                                shard_size=shard_size)
        server = DispatcherServer(dispatcher, port=0).start()
        try:
            client = DispatcherClient(server.url)
            cid = client.submit(config)["campaign"]
            workers = [FleetWorker(server.url, name=f"w{i}", poll=0.05,
                                   max_idle=5.0)
                       for i in range(n_workers)]
            threads = [threading.Thread(target=w.run, daemon=True)
                       for w in workers]
            for thread in threads:
                thread.start()
            status = client.wait(cid, timeout=300)
            for thread in threads:
                thread.join(timeout=30)
            return dispatcher, cid, status, workers
        finally:
            server.shutdown()

    def test_two_worker_fleet_matches_local_run(self, tmp_path,
                                                small_records):
        config = CampaignConfig(**SMALL)
        dispatcher, cid, status, workers = self.run_fleet(
            tmp_path, config)
        assert status["state"] == "complete"
        fleet = dispatcher.records(cid)["records"]
        assert canonical_log_text(fleet) == \
               canonical_log_text(small_records)
        # the merged on-disk log carries the same records plus a header
        from repro.faults.parser import load_records, read_log_header
        log_path = tmp_path / "server" / f"{cid}.jsonl"
        header = read_log_header(log_path)
        assert header["fingerprint"] == dispatcher.records(
            cid)["fingerprint"]
        assert canonical_log_text(load_records(log_path)) == \
               canonical_log_text(small_records)
        # work stealing actually spread the load
        assert sum(w.runs_done for w in workers) == len(small_records)

    def test_http_error_mapping(self, tmp_path):
        dispatcher = Dispatcher(log_dir=tmp_path / "server")
        server = DispatcherServer(dispatcher, port=0).start()
        try:
            client = DispatcherClient(server.url)
            assert client.ping()["ok"]
            with pytest.raises(DispatchError, match="404"):
                client.status("c404")
            with pytest.raises(DispatchError, match="409"):
                cid = client.submit(small_config_text())["campaign"]
                lease = client.call("/api/lease", {"worker": "w"})
                client.call("/api/records", {
                    "campaign": cid, "lease": lease["lease"],
                    "fingerprint": "f" * 64, "records": []})
        finally:
            server.shutdown()

    def test_events_and_metrics_over_http(self, tmp_path):
        from repro.obs.live import lint_prometheus

        dispatcher = Dispatcher(log_dir=tmp_path / "server")
        server = DispatcherServer(dispatcher, port=0).start()
        try:
            client = DispatcherClient(server.url)
            cid = client.submit(small_config_text())["campaign"]
            lease = client.call("/api/lease", {"worker": "w"})
            specs = [spec_from_wire(w) for w in lease["specs"]]
            client.call("/api/records", {
                "campaign": cid, "lease": lease["lease"],
                "fingerprint": lease["fingerprint"],
                "records": [fake_record(s) for s in specs],
                "done": True, "worker": "w"})
            page = client.events(cid)
            kinds = [e["event"] for e in page["events"]]
            assert kinds[0] == "campaign_start"
            assert kinds.count("run") == len(specs)
            # cursor resume over HTTP: second page picks up where the
            # first left off, limit clamps the page size
            head = client.events(cid, limit=2)
            assert len(head["events"]) == 2
            tail = client.events(cid, cursor=head["next"])
            assert head["events"] + tail["events"] == page["events"]
            with pytest.raises(DispatchError, match="404"):
                client.events("c404")
            text = client.metrics_text()
            assert lint_prometheus(text) == []
            assert "gpufi_runs_total" in text
        finally:
            server.shutdown()

    def test_unreachable_dispatcher(self):
        client = DispatcherClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(DispatchError, match="cannot reach"):
            client.ping()


class TestRemoteBackend:
    def test_remote_backend_matches_local(self, tmp_path, small_plan,
                                          small_records):
        import dataclasses

        dispatcher = Dispatcher(log_dir=tmp_path / "server",
                                shard_size=2)
        server = DispatcherServer(dispatcher, port=0).start()
        stop = threading.Event()
        worker = FleetWorker(server.url, name="w", poll=0.05, stop=stop)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            config = dataclasses.replace(
                CampaignConfig(**SMALL), backend="remote",
                backend_url=server.url,
                log_path=tmp_path / "client.jsonl")
            result = Campaign(config).run()
            assert canonical_log_text(result.records) == \
                   canonical_log_text(small_records)
            # the client-side log is a complete, ordered artifact
            from repro.faults.parser import load_records
            local = load_records(tmp_path / "client.jsonl")
            assert [strip_volatile(r) for r in local] == \
                   [strip_volatile(r) for r in result.records]
        finally:
            stop.set()
            thread.join(timeout=10)
            server.shutdown()

    def test_remote_backend_requires_url(self):
        import dataclasses

        config = dataclasses.replace(CampaignConfig(**SMALL),
                                     backend="remote")
        campaign = Campaign(config)
        specs = campaign.plan()
        with pytest.raises(ValueError, match="backend_url"):
            campaign.execute(specs)
