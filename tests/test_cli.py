"""The ``gpufi`` command-line front-end."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_benchmarks_and_cards(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vectoradd" in out and "RTX2060" in out


class TestProfile:
    def test_profile_output(self, capsys):
        assert main(["profile", "--benchmark", "vectoradd",
                     "--card", "RTX2060"]) == 0
        out = capsys.readouterr().out
        assert "vectorAdd" in out and "occupancy" in out


class TestCampaign:
    def test_campaign_flags(self, capsys, tmp_path):
        log = tmp_path / "log.jsonl"
        assert main(["campaign", "--benchmark", "vectoradd",
                     "--structures", "register_file", "--runs", "5",
                     "--seed", "2", "--log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "wAVF" in out and "FIT" in out
        assert log.exists()

    def test_campaign_config_file(self, capsys, tmp_path):
        config = tmp_path / "gpufi.config"
        config.write_text(
            "-gpufi_benchmark vectoradd\n"
            "-gpufi_card RTX2060\n"
            "-gpufi_components register_file\n"
            "-gpufi_runs 3\n")
        assert main(["campaign", "--config", str(config)]) == 0
        assert "register_file" in capsys.readouterr().out

    def test_campaign_requires_benchmark(self):
        with pytest.raises(SystemExit):
            main(["campaign"])


class TestReport:
    def test_report_from_log(self, capsys, tmp_path):
        log = tmp_path / "log.jsonl"
        main(["campaign", "--benchmark", "vectoradd", "--structures",
              "register_file", "--runs", "4", "--log", str(log)])
        capsys.readouterr()
        assert main(["report", str(log)]) == 0
        out = capsys.readouterr().out
        assert "vectorAdd" in out and "FR" in out


class TestMarkdownOutput:
    def test_campaign_markdown_report(self, capsys, tmp_path):
        report = tmp_path / "report.md"
        assert main(["campaign", "--benchmark", "vectoradd",
                     "--structures", "register_file", "--runs", "3",
                     "--markdown", str(report)]) == 0
        text = report.read_text()
        assert text.startswith("# gpuFI-4 campaign")
        assert "wAVF" in text
