"""The L1 instruction cache extension: encoding, fetch, injection."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import make_benchmark
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.injector import Injector
from repro.faults.mask import FaultMask
from repro.faults.targets import CHIP_STRUCTURES, Structure
from repro.isa.encoding import (WORD_BYTES, DecodeError,
                                decode_instruction, encode_instruction,
                                encode_kernel)
from repro.isa.operands import Immediate
from repro.sim.cards import rtx_2060
from repro.sim.device import Device, RunOptions
from repro.sim.errors import SimulationError
from repro.sim.kernel import Kernel


def icache_card(**extra):
    return dataclasses.replace(rtx_2060(), model_icache=True, **extra)


SPIN = Kernel("icache_spin", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    MOV R10, 0x111
    MOV R11, 0
loop:
    IADD R11, R11, 1
    ISETP.LT.AND P0, PT, R11, 200, PT
@P0 BRA loop
    STG [R9], R10
    EXIT
""", num_params=1)


class TestEncoding:
    def test_word_size(self):
        inst = SPIN.instructions[0]
        assert len(encode_instruction(inst)) == WORD_BYTES

    def test_kernel_image_size(self):
        assert len(SPIN.binary) == WORD_BYTES * len(SPIN.instructions)

    def test_all_workload_kernels_roundtrip(self):
        from repro.bench import BENCHMARK_CLASSES

        def canon(op):
            return ("imm", op.value) if isinstance(op, Immediate) else op

        for cls in BENCHMARK_CLASSES:
            for kernel in cls().kernels():
                for inst in kernel.instructions:
                    back = decode_instruction(encode_instruction(inst),
                                              inst.pc)
                    assert back.opcode == inst.opcode
                    assert back.modifiers == inst.modifiers
                    assert back.guard == inst.guard
                    assert back.dsts == inst.dsts
                    if inst.is_branch:
                        assert back.target_pc == inst.target_pc
                        assert back.reconv_pc == inst.reconv_pc
                    else:
                        assert tuple(map(canon, back.srcs)) == \
                            tuple(map(canon, inst.srcs))

    def test_invalid_opcode_raises(self):
        word = bytearray(encode_instruction(SPIN.instructions[0]))
        word[0] = 0xFF
        with pytest.raises(DecodeError):
            decode_instruction(bytes(word), 0)

    def test_truncated_word_raises(self):
        with pytest.raises(DecodeError):
            decode_instruction(b"\x00" * 4, 0)

    @given(st.binary(min_size=WORD_BYTES, max_size=WORD_BYTES))
    @settings(max_examples=150, deadline=None)
    def test_random_words_never_crash_the_decoder(self, word):
        """Arbitrary bit patterns either decode or raise DecodeError --
        never any other exception."""
        try:
            decode_instruction(word, 0)
        except DecodeError:
            pass


class TestFetchPath:
    def test_benchmark_passes_with_icache(self):
        dev = Device(icache_card())
        assert make_benchmark("vectoradd").run(dev)
        l1i = dev.gpu.cores[0].l1i
        assert l1i.stats.accesses > 0 and l1i.stats.hits > 0

    def test_icache_off_by_default(self):
        dev = Device("RTX2060")
        out = dev.malloc(128)
        dev.launch(SPIN, grid=1, block=32, params=[out])
        assert dev.gpu.cores[0].l1i.stats.accesses == 0

    def test_fetch_misses_cost_cycles(self):
        cycles = {}
        for label, card in (("on", icache_card()),
                            ("off", rtx_2060())):
            dev = Device(card)
            out = dev.malloc(128)
            dev.launch(SPIN, grid=1, block=32, params=[out])
            cycles[label] = dev.cycle
        assert cycles["on"] > cycles["off"]

    def test_determinism(self):
        def run():
            dev = Device(icache_card())
            out = dev.malloc(128)
            dev.launch(SPIN, grid=1, block=32, params=[out])
            return dev.cycle

        assert run() == run()


class TestIcacheInjection:
    def _line_index_for_pc(self, dev, kernel, pc):
        card = dev.config
        base = dev.gpu.code_base(kernel) + pc * WORD_BYTES
        base -= base % card.l1i.line_bytes
        set_idx = (base // card.l1i.line_bytes) % card.l1i.num_sets
        return set_idx * card.l1i.assoc  # way 0: first fill of the set

    def test_loop_body_word_flip_changes_behaviour(self):
        """Flipping bits of the loop-body IADD word (re-fetched every
        iteration) must produce at least one non-clean outcome: SDC,
        illegal instruction, timeout, or a timing change."""
        from repro.sim.errors import SimTimeout

        golden = Device(icache_card())
        out = golden.malloc(128)
        golden.launch(SPIN, grid=1, block=32, params=[out])
        golden_cycles = golden.cycle

        # pc 6 is the loop's "IADD R11, R11, 1"; code bases are keyed
        # by kernel name, so the golden device sees the same line index
        line_index = self._line_index_for_pc(golden, SPIN, 6)

        outcomes = set()
        for bit in (0, 1, 2, 32, 33, 96, 100):
            word_bit = 57 + 6 * WORD_BYTES * 8 + bit
            mask = FaultMask(structure=Structure.L1I_CACHE, cycle=300,
                             entry_index=line_index,
                             bit_offsets=(word_bit,), seed=1, n_cores=30)
            dev = Device(icache_card(),
                         RunOptions(cycle_budget=4 * golden_cycles,
                                    injector=Injector([mask])))
            out = dev.malloc(128)
            try:
                dev.launch(SPIN, grid=1, block=32, params=[out])
                values = dev.read_array(out, (32,), np.uint32)
                if (values != 0x111).any():
                    outcomes.add("sdc")
                elif dev.cycle != golden_cycles:
                    outcomes.add("performance")
                else:
                    outcomes.add("ok")
            except SimTimeout:
                outcomes.add("timeout")
            except SimulationError:
                outcomes.add("crash")
        assert outcomes - {"ok"}, \
            f"at least one icache flip must change behaviour: {outcomes}"

    def test_invalid_line_flip_masked(self):
        card = icache_card()
        mask = FaultMask(structure=Structure.L1I_CACHE, cycle=300,
                         entry_index=card.l1i.num_lines - 1,
                         bit_offsets=(60,), seed=2)
        dev = Device(card, RunOptions(injector=Injector([mask])))
        out = dev.malloc(128)
        dev.launch(SPIN, grid=1, block=32, params=[out])
        assert (dev.read_array(out, (32,), np.uint32) == 0x111).all()

    def test_campaign_over_l1i(self):
        result = Campaign(CampaignConfig(
            benchmark="vectoradd", card="RTX2060",
            structures=(Structure.L1I_CACHE,),
            runs_per_structure=4, seed=3)).run()
        assert result.runs("vectorAdd", Structure.L1I_CACHE) == 4

    def test_l1i_not_in_chip_avf(self):
        assert Structure.L1I_CACHE not in CHIP_STRUCTURES
        assert not Structure.L1I_CACHE.on_chip
