"""Functional semantics of the ALU / SFU / conversion opcodes.

Each test runs a tiny kernel that computes into a register and stores
it to global memory, then compares against numpy-computed expectations
for all active lanes.
"""

import numpy as np
import pytest

from repro.sim.device import Device
from repro.sim.kernel import Kernel

_F32 = np.float32
_I32 = np.int32
_U32 = np.uint32


def run_op(body: str, a=None, b=None, c=None, n: int = 32) -> np.ndarray:
    """Run ``body`` (computing R10 from R4,R5,R6) over n lanes.

    ``a``/``b``/``c`` are per-lane uint32 source arrays loaded into
    R4/R5/R6; the kernel stores R10 to the output buffer.
    """
    dev = Device("RTX2060")
    sources = []
    loads = []
    for reg, values in (("R4", a), ("R5", b), ("R6", c)):
        if values is None:
            continue
        arr = np.asarray(values, dtype=np.uint32)
        ptr = dev.to_device(arr)
        slot = len(sources)
        loads.append(f"    LDC R20, c[{4 * slot:#x}]\n"
                     f"    IADD R21, R20, R3\n"
                     f"    LDG {reg}, [R21]")
        sources.append(ptr)
    out_slot = len(sources)
    out_ptr = dev.malloc(4 * n)
    source = (
        "    S2R R0, SR_TID_X\n"
        "    SHL R3, R0, 2\n"
        + "\n".join(loads) + "\n"
        + body + "\n"
        + f"    LDC R22, c[{4 * out_slot:#x}]\n"
        "    IADD R23, R22, R3\n"
        "    STG [R23], R10\n"
        "    EXIT\n"
    )
    kernel = Kernel("op_test", source, num_params=out_slot + 1)
    dev.launch(kernel, grid=1, block=n, params=sources + [out_ptr])
    return dev.read_array(out_ptr, (n,), np.uint32)


def rnd_u32(seed, n=32):
    return np.random.default_rng(seed).integers(0, 2**32, n, dtype=np.uint64
                                                ).astype(np.uint32)


def rnd_f32(seed, n=32, lo=-10, hi=10):
    gen = np.random.default_rng(seed)
    return (gen.random(n, dtype=np.float32) * (hi - lo) + lo).astype(_F32)


class TestIntegerOps:
    def test_iadd_wraps(self):
        a, b = rnd_u32(1), rnd_u32(2)
        out = run_op("    IADD R10, R4, R5", a, b)
        assert np.array_equal(out, a + b)

    def test_isub(self):
        a, b = rnd_u32(3), rnd_u32(4)
        out = run_op("    ISUB R10, R4, R5", a, b)
        assert np.array_equal(out, a - b)

    def test_imul_low32(self):
        a, b = rnd_u32(5), rnd_u32(6)
        out = run_op("    IMUL R10, R4, R5", a, b)
        assert np.array_equal(out, a * b)

    def test_imad(self):
        a, b, c = rnd_u32(7), rnd_u32(8), rnd_u32(9)
        out = run_op("    IMAD R10, R4, R5, R6", a, b, c)
        assert np.array_equal(out, a * b + c)

    def test_imnmx_min_signed(self):
        a, b = rnd_u32(10), rnd_u32(11)
        out = run_op("    IMNMX.MIN R10, R4, R5", a, b)
        expect = np.minimum(a.view(_I32), b.view(_I32)).view(_U32)
        assert np.array_equal(out, expect)

    def test_imnmx_max_signed(self):
        a, b = rnd_u32(12), rnd_u32(13)
        out = run_op("    IMNMX.MAX R10, R4, R5", a, b)
        expect = np.maximum(a.view(_I32), b.view(_I32)).view(_U32)
        assert np.array_equal(out, expect)

    def test_iabs(self):
        a = rnd_u32(14)
        out = run_op("    IABS R10, R4", a)
        assert np.array_equal(out, np.abs(a.view(_I32)).view(_U32))

    def test_shl_masks_shift(self):
        a = rnd_u32(15)
        out = run_op("    SHL R10, R4, 33", a)  # 33 & 31 == 1
        assert np.array_equal(out, a << np.uint32(1))

    def test_shr_logical(self):
        a = rnd_u32(16)
        out = run_op("    SHR R10, R4, 4", a)
        assert np.array_equal(out, a >> np.uint32(4))

    def test_shr_arithmetic(self):
        a = rnd_u32(17)
        out = run_op("    SHR.S R10, R4, 4", a)
        assert np.array_equal(out, (a.view(_I32) >> 4).view(_U32))

    @pytest.mark.parametrize("op,fn", [
        ("AND", np.bitwise_and),
        ("OR", np.bitwise_or),
        ("XOR", np.bitwise_xor),
    ])
    def test_bitwise(self, op, fn):
        a, b = rnd_u32(18), rnd_u32(19)
        out = run_op(f"    {op} R10, R4, R5", a, b)
        assert np.array_equal(out, fn(a, b))

    def test_not(self):
        a = rnd_u32(20)
        out = run_op("    NOT R10, R4", a)
        assert np.array_equal(out, ~a)

    def test_iadd_negated_source(self):
        a, b = rnd_u32(21), rnd_u32(22)
        out = run_op("    IADD R10, R4, -R5", a, b)
        assert np.array_equal(out, a - b)


class TestMoves:
    def test_mov_immediate(self):
        out = run_op("    MOV R10, 0xdead")
        assert (out == 0xDEAD).all()

    def test_mov_rz_reads_zero(self):
        out = run_op("    MOV R10, RZ")
        assert (out == 0).all()

    def test_write_to_rz_discarded(self):
        out = run_op("    MOV RZ, 7\n    MOV R10, RZ")
        assert (out == 0).all()

    def test_s2r_laneid(self):
        out = run_op("    S2R R10, SR_LANEID")
        assert np.array_equal(out, np.arange(32, dtype=np.uint32))

    def test_sel(self):
        a, b = rnd_u32(23), rnd_u32(24)
        body = ("    ISETP.GE.AND P0, PT, R4, RZ, PT\n"
                "    SEL R10, R4, R5, P0")
        out = run_op(body, a, b)
        expect = np.where(a.view(_I32) >= 0, a, b)
        assert np.array_equal(out, expect)


class TestFloatOps:
    def test_fadd(self):
        a, b = rnd_f32(30), rnd_f32(31)
        out = run_op("    FADD R10, R4, R5", a.view(_U32), b.view(_U32))
        assert np.array_equal(out.view(_F32), a + b)

    def test_fmul(self):
        a, b = rnd_f32(32), rnd_f32(33)
        out = run_op("    FMUL R10, R4, R5", a.view(_U32), b.view(_U32))
        assert np.array_equal(out.view(_F32), a * b)

    def test_ffma(self):
        a, b, c = rnd_f32(34), rnd_f32(35), rnd_f32(36)
        out = run_op("    FFMA R10, R4, R5, R6", a.view(_U32),
                     b.view(_U32), c.view(_U32))
        assert np.allclose(out.view(_F32), a * b + c, rtol=1e-6)

    def test_fmnmx(self):
        a, b = rnd_f32(37), rnd_f32(38)
        out = run_op("    FMNMX.MIN R10, R4, R5", a.view(_U32), b.view(_U32))
        assert np.array_equal(out.view(_F32), np.minimum(a, b))

    def test_float_abs_modifier(self):
        a = rnd_f32(39)
        out = run_op("    FADD R10, |R4|, 0.0", a.view(_U32))
        assert np.array_equal(out.view(_F32), np.abs(a))

    def test_float_negate_modifier(self):
        a, b = rnd_f32(40), rnd_f32(41)
        out = run_op("    FADD R10, R4, -R5", a.view(_U32), b.view(_U32))
        assert np.array_equal(out.view(_F32), a - b)

    def test_float_immediate(self):
        a = rnd_f32(42)
        out = run_op("    FMUL R10, R4, 0.5", a.view(_U32))
        assert np.array_equal(out.view(_F32), a * _F32(0.5))


class TestSFU:
    def test_mufu_rcp(self):
        a = rnd_f32(50, lo=1, hi=10)
        out = run_op("    MUFU.RCP R10, R4", a.view(_U32))
        assert np.allclose(out.view(_F32), 1.0 / a, rtol=1e-6)

    def test_mufu_sqrt(self):
        a = rnd_f32(51, lo=0.1, hi=100)
        out = run_op("    MUFU.SQRT R10, R4", a.view(_U32))
        assert np.allclose(out.view(_F32), np.sqrt(a), rtol=1e-6)

    def test_mufu_rsq(self):
        a = rnd_f32(52, lo=0.1, hi=100)
        out = run_op("    MUFU.RSQ R10, R4", a.view(_U32))
        assert np.allclose(out.view(_F32), 1.0 / np.sqrt(a), rtol=1e-6)

    def test_mufu_ex2_lg2_roundtrip(self):
        a = rnd_f32(53, lo=0.5, hi=4)
        out = run_op("    MUFU.LG2 R10, R4", a.view(_U32))
        assert np.allclose(out.view(_F32), np.log2(a), rtol=1e-5)

    def test_mufu_sin_cos(self):
        a = rnd_f32(54, lo=-3, hi=3)
        out = run_op("    MUFU.SIN R10, R4", a.view(_U32))
        assert np.allclose(out.view(_F32), np.sin(a), rtol=1e-5, atol=1e-6)


class TestConversions:
    def test_i2f_signed(self):
        a = rnd_u32(60)
        out = run_op("    I2F R10, R4", a)
        assert np.array_equal(out.view(_F32), a.view(_I32).astype(_F32))

    def test_i2f_unsigned(self):
        a = rnd_u32(61)
        out = run_op("    I2F.U32 R10, R4", a)
        assert np.array_equal(out.view(_F32), a.astype(_F32))

    def test_f2i_truncates(self):
        a = rnd_f32(62)
        out = run_op("    F2I R10, R4", a.view(_U32))
        assert np.array_equal(out.view(_I32), a.astype(np.float64
                                                       ).astype(np.int64
                                                                ).astype(_I32))

    def test_f2i_saturates(self):
        a = np.full(32, 1e20, dtype=_F32)
        out = run_op("    F2I R10, R4", a.view(_U32))
        assert (out.view(_I32) == 2**31 - 1).all()

    def test_f2i_nan_is_zero(self):
        a = np.full(32, np.nan, dtype=_F32)
        out = run_op("    F2I R10, R4", a.view(_U32))
        assert (out == 0).all()


class TestPredicates:
    @pytest.mark.parametrize("cmp_mod,fn", [
        ("EQ", np.equal), ("NE", np.not_equal), ("LT", np.less),
        ("LE", np.less_equal), ("GT", np.greater), ("GE", np.greater_equal),
    ])
    def test_isetp_compare(self, cmp_mod, fn):
        a, b = rnd_u32(70), rnd_u32(71)
        body = (f"    ISETP.{cmp_mod}.AND P0, PT, R4, R5, PT\n"
                "    SEL R10, R4, R5, P0")
        out = run_op(body, a, b)
        expect = np.where(fn(a.view(_I32), b.view(_I32)), a, b)
        assert np.array_equal(out, expect)

    def test_isetp_unsigned(self):
        a = np.full(32, 0xFFFFFFFF, dtype=_U32)
        b = np.ones(32, dtype=_U32)
        body = ("    ISETP.GT.U32.AND P0, PT, R4, R5, PT\n"
                "    SEL R10, R4, R5, P0")
        out = run_op(body, a, b)
        assert (out == 0xFFFFFFFF).all()  # unsigned: big > 1

    def test_isetp_second_dst_gets_complement(self):
        a, b = rnd_u32(72), rnd_u32(73)
        body = ("    ISETP.LT.AND P0, P1, R4, R5, PT\n"
                "    SEL R10, R4, R5, P1")
        out = run_op(body, a, b)
        expect = np.where(a.view(_I32) < b.view(_I32), b, a)
        assert np.array_equal(out, expect)

    def test_fsetp(self):
        a, b = rnd_f32(74), rnd_f32(75)
        body = ("    FSETP.LT.AND P0, PT, R4, R5, PT\n"
                "    SEL R10, R4, R5, P0")
        out = run_op(body, a.view(_U32), b.view(_U32))
        expect = np.where(a < b, a, b)
        assert np.array_equal(out.view(_F32), expect)

    def test_guard_false_lanes_keep_old_value(self):
        a = rnd_u32(76)
        body = ("    MOV R10, 7\n"
                "    ISETP.GE.AND P0, PT, R4, RZ, PT\n"
                "@P0 MOV R10, 9")
        out = run_op(body, a)
        expect = np.where(a.view(_I32) >= 0, 9, 7)
        assert np.array_equal(out, expect.astype(_U32))
