"""Cross-process reproducibility: identical seeds => identical results.

Campaign results must not depend on Python hash randomisation, dict
ordering, or any other process-specific state — a reliability study
must be exactly replayable from its configuration.
"""

import json
import os
import subprocess
import sys

import pytest

_SCRIPT = """
import json
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.targets import Structure

result = Campaign(CampaignConfig(
    benchmark="pathfinder", card="RTX2060",
    structures=(Structure.REGISTER_FILE, Structure.L2_CACHE),
    runs_per_structure=4, seed=1234)).run()
out = {
    "golden_cycles": result.golden_cycles,
    "effects": sorted((rec["structure"], rec["run"], rec["effect"],
                       rec["mask"]["cycle"], rec["mask"]["entry_index"])
                      for rec in result.records),
}
print(json.dumps(out))
"""


def _run_once(hashseed: str) -> dict:
    # A minimal env isolates the child from ambient PYTHONHASHSEED /
    # PYTHONDONTWRITEBYTECODE noise; sys.path is forwarded explicitly
    # so the child resolves the same `repro` package as this process
    # (the package is typically on PYTHONPATH, not installed).
    env = {
        "PYTHONHASHSEED": hashseed,
        "PATH": os.environ.get("PATH", "/usr/bin:/bin:/usr/local/bin"),
        "PYTHONPATH": os.pathsep.join(p for p in sys.path if p),
    }
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT], capture_output=True, text=True,
        timeout=600, env=env)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_identical_across_processes_and_hash_seeds():
    a = _run_once("0")
    b = _run_once("424242")
    assert a == b
