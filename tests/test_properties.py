"""Property-based tests (hypothesis) on core structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import _parse_immediate  # intentional: invariant
from repro.sim.cache import Cache
from repro.sim.config import CacheGeometry
from repro.sim.memory import GlobalMemory


@st.composite
def cache_ops(draw):
    """A random sequence of fill/lookup/invalidate/flip operations."""
    ops = []
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["fill", "lookup", "invalidate",
                                     "flip", "write"]))
        addr = draw(st.integers(0, 255)) * 128
        ops.append((kind, addr, draw(st.integers(0, 255))))
    return ops


class TestCacheInvariants:
    @given(cache_ops())
    @settings(max_examples=60, deadline=None)
    def test_no_duplicate_tags_in_a_set(self, ops):
        """Without tag faults, a set never holds duplicate tags.

        (A *tag fault* can legitimately create an alias, exactly as on
        hardware -- so 'flip' ops are restricted to the data region
        here.)
        """
        cache = Cache("prop", CacheGeometry(4 * 1024, assoc=2), 57)
        for kind, addr, payload in ops:
            if kind == "fill":
                cache.fill(addr, np.full(128, payload, dtype=np.uint8))
            elif kind == "lookup":
                cache.lookup(addr)
            elif kind == "invalidate":
                cache.invalidate(addr)
            elif kind == "write":
                line = cache.peek(addr)
                if line is not None:
                    cache.write_word(line, addr, payload)
            else:
                data_bit = cache.tag_bits + payload % (128 * 8)
                cache.flip_bit(payload % cache.geometry.num_lines,
                               data_bit)
        for set_idx, ways in cache._sets.items():
            tags = [ln.tag for ln in ways if ln.valid]
            assert len(tags) == len(set(tags)), "duplicate tag in a set"

    @given(cache_ops())
    @settings(max_examples=40, deadline=None)
    def test_flush_leaves_nothing_dirty(self, ops):
        cache = Cache("prop", CacheGeometry(4 * 1024, assoc=2), 57)
        for kind, addr, payload in ops:
            if kind == "fill":
                cache.fill(addr, np.full(128, payload, dtype=np.uint8))
            elif kind == "write":
                line = cache.peek(addr)
                if line is not None:
                    cache.write_word(line, addr, payload)
        cache.flush()
        for ways in cache._sets.values():
            assert not any(ln.valid and ln.dirty for ln in ways)

    @given(st.integers(0, 31), st.integers(0, 1080))
    @settings(max_examples=60, deadline=None)
    def test_double_flip_is_identity(self, line_idx, bit):
        cache = Cache("prop", CacheGeometry(4 * 1024, assoc=2), 57)
        cache.fill(line_idx * 128, np.arange(128, dtype=np.uint8))
        target = cache.line_by_index(line_idx)
        before = (target.tag, target.data.copy())
        cache.flip_bit(line_idx, bit)
        cache.flip_bit(line_idx, bit)
        assert target.tag == before[0]
        assert np.array_equal(target.data, before[1])


class TestAllocatorInvariants:
    @given(st.lists(st.integers(1, 5000), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        mem = GlobalMemory(4 * 1024 * 1024)
        spans = []
        for size in sizes:
            ptr = mem.malloc(size)
            spans.append((ptr, ptr + size))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @given(st.lists(st.integers(1, 5000), min_size=1, max_size=20),
           st.integers(0, 10**7))
    @settings(max_examples=50, deadline=None)
    def test_check_many_consistent_with_scalar(self, sizes, probe):
        mem = GlobalMemory(4 * 1024 * 1024)
        for size in sizes:
            mem.malloc(size)
        probe = (probe // 4) * 4  # aligned probes only
        scalar_ok = True
        try:
            mem.check_access(probe)
        except Exception:
            scalar_ok = False
        vector_ok = True
        try:
            mem.check_many(np.array([probe], dtype=np.int64))
        except Exception:
            vector_ok = False
        assert scalar_ok == vector_ok


class TestImmediateParsing:
    @given(st.integers(-(2**31), 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_integer_roundtrip_mod_2_32(self, value):
        imm = _parse_immediate(str(value), 1)
        assert imm.value == value & 0xFFFFFFFF

    @given(st.floats(allow_nan=False, allow_infinity=False,
                     width=32))
    @settings(max_examples=100, deadline=None)
    def test_float_bit_pattern(self, value):
        text = repr(float(np.float32(value)))
        if "." not in text and "e" not in text and "E" not in text:
            text += ".0"
        imm = _parse_immediate(text, 1)
        assert np.uint32(imm.value).view(np.float32) == np.float32(value)
