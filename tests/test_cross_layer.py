"""End-to-end cross-layer fault propagation scenarios.

Each test stages a microarchitectural fault and follows it through the
full stack to an application-visible outcome -- the cross-layer
propagation chains the paper's framework exists to measure.
"""

import numpy as np
import pytest

from repro.faults.injector import Injector
from repro.faults.mask import FaultMask
from repro.faults.targets import Structure
from repro.sim.device import Device, RunOptions
from repro.sim.errors import SimTimeout
from repro.sim.kernel import Kernel


class TestL2DataLoss:
    def test_dirty_line_tag_flip_loses_stores(self):
        """Stores sit dirty in the L2; flipping a tag bit of that line
        orphans the data -- the host later reads the stale DRAM copy."""
        dev = Device("RTX2060")
        store_kernel = Kernel("burst_store", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    MOV R10, 0xBEEF
    STG [R9], R10
    EXIT
""", num_params=1)
        out = dev.malloc(128)
        dev.launch(store_kernel, grid=1, block=32, params=[out])
        # locate the dirty line and flip one of its tag bits
        l2 = dev.gpu.l2
        line = l2.peek(out)
        assert line is not None and line.dirty
        target = next(idx for idx in range(l2.geometry.num_lines)
                      if l2.line_by_index(idx) is line)
        l2.flip_bit(target, 5)  # tag bit
        values = dev.read_array(out, (32,), np.uint32)
        assert (values == 0).all()  # the 0xBEEF stores are lost

    def test_clean_line_data_flip_visible_to_host(self):
        dev = Device("RTX2060")
        data = np.arange(32, dtype=np.uint32)
        ptr = dev.to_device(data)
        touch = Kernel("touch", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    LDG R10, [R9]
    EXIT
""", num_params=1)
        dev.launch(touch, grid=1, block=32, params=[ptr])
        line = dev.gpu.l2.peek(ptr)
        assert line is not None
        word_bit = 57 + (ptr % 128) * 8  # first data bit of word 0
        target = next(idx for idx in range(dev.gpu.l2.geometry.num_lines)
                      if dev.gpu.l2.line_by_index(idx) is line)
        dev.gpu.l2.flip_bit(target, word_bit)
        assert dev.read_array(ptr, (32,), np.uint32)[0] == 1  # 0 ^ 1


class TestTexturePathCorruption:
    def test_l1t_data_flip_reaches_tld(self):
        # allocation addresses are deterministic, so probe the target
        # line index with a scratch device before building the mask
        data = np.zeros(32, dtype=np.uint32)
        probe = Device("RTX2060")
        probe_ptr = probe.to_device(data)
        card = probe.config
        set_idx = (probe_ptr // card.l1t.line_bytes) % card.l1t.num_sets
        line_index = set_idx * card.l1t.assoc
        mask = FaultMask(structure=Structure.L1T_CACHE, cycle=150,
                         entry_index=line_index, bit_offsets=(57,),
                         seed=2, n_cores=30)
        dev = Device("RTX2060", RunOptions(injector=Injector([mask])))
        ptr = dev.to_device(data)
        assert ptr == probe_ptr
        out = dev.malloc(128)
        kernel = Kernel("tex_twice", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    LDC R9, c[0x4]
    IADD R10, R8, R3
    TLD R11, [R10]             ; fills the L1T line
    MOV R12, 0
loop:
    IADD R12, R12, 1
    ISETP.LT.AND P0, PT, R12, 100, PT
@P0 BRA loop
    TLD R13, [R10]             ; re-read: hits the corrupted line
    IADD R14, R9, R3
    STG [R14], R13
    EXIT
""", num_params=2)
        dev.launch(kernel, grid=1, block=32, params=[ptr, out])
        values = dev.read_array(out, (32,), np.uint32)
        # the flipped bit lands in whichever word the line holds; at
        # least the first word of the block must show it
        assert values[0] == 1


class TestSharedMemoryCorruption:
    def test_smem_flip_between_produce_and_consume(self):
        mask = FaultMask(structure=Structure.SHARED_MEM, cycle=150,
                         entry_index=0, bit_offsets=(1,), seed=3)
        dev = Device("RTX2060", RunOptions(injector=Injector([mask])))
        out = dev.malloc(128)
        kernel = Kernel("smem_rdwr", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    MOV R10, 0x10
    STS [R3], R10
    BAR.SYNC
    MOV R11, 0
loop:
    IADD R11, R11, 1
    ISETP.LT.AND P0, PT, R11, 100, PT
@P0 BRA loop
    LDS R12, [R3]
    STG [R9], R12
    EXIT
""", num_params=1, smem_bytes=128)
        dev.launch(kernel, grid=1, block=32, params=[out])
        values = dev.read_array(out, (32,), np.uint32)
        assert values[0] == 0x12
        assert (values[1:] == 0x10).all()


class TestControlFlowFaults:
    def test_loop_counter_flip_times_out(self):
        # flip bit 31 of the loop counter mid-run: counter goes hugely
        # negative, the bound check keeps the warp looping
        mask = FaultMask(structure=Structure.REGISTER_FILE, cycle=500,
                         entry_index=11, bit_offsets=(31,),
                         warp_level=True, seed=4)
        dev = Device("RTX2060",
                     RunOptions(cycle_budget=20_000,
                                injector=Injector([mask])))
        out = dev.malloc(128)
        kernel = Kernel("bounded_loop", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    MOV R11, 0
loop:
    IADD R11, R11, 1
    ISETP.LT.AND P0, PT, R11, 500, PT
@P0 BRA loop
    STG [R9], R11
    EXIT
""", num_params=1)
        with pytest.raises(SimTimeout):
            dev.launch(kernel, grid=1, block=32, params=[out])
