"""Static sanity analysis of every workload kernel.

Catches kernel-authoring mistakes without running anything: parameter
reads beyond the declared parameter count, shared/local accesses in
kernels that declare none, implausible register pressure, unreachable
code after unconditional control transfers.
"""

import pytest

from repro.bench import BENCHMARK_CLASSES
from repro.isa.opcodes import OpClass
from repro.isa.operands import ConstRef

ALL_KERNELS = [(cls.abbrev, kernel)
               for cls in BENCHMARK_CLASSES
               for kernel in cls().kernels()]
IDS = [f"{abbrev}:{kernel.name}" for abbrev, kernel in ALL_KERNELS]


@pytest.mark.parametrize("abbrev,kernel", ALL_KERNELS, ids=IDS)
class TestKernelStatic:
    def test_constant_reads_within_params(self, abbrev, kernel):
        for inst in kernel.instructions:
            for op in inst.srcs:
                if isinstance(op, ConstRef):
                    assert op.offset < 4 * kernel.num_params, \
                        f"{kernel.name} pc{inst.pc}: c[{op.offset:#x}] " \
                        f"beyond {kernel.num_params} params"

    def test_shared_usage_declared(self, abbrev, kernel):
        uses_shared = any(inst.spec.space == "shared"
                          for inst in kernel.instructions)
        if uses_shared:
            assert kernel.smem_bytes > 0, kernel.name

    def test_local_usage_declared(self, abbrev, kernel):
        uses_local = any(inst.spec.space == "local"
                         for inst in kernel.instructions)
        if uses_local:
            assert kernel.local_bytes > 0, kernel.name

    def test_register_pressure_plausible(self, abbrev, kernel):
        assert 1 <= kernel.num_regs <= 64, \
            f"{kernel.name} uses {kernel.num_regs} registers"

    def test_barrier_usage_implies_shared_or_sync(self, abbrev, kernel):
        # every kernel with a barrier also touches shared memory (the
        # only cross-thread channel barriers order in these workloads)
        has_barrier = any(inst.is_barrier for inst in kernel.instructions)
        uses_shared = any(inst.spec.space == "shared"
                          for inst in kernel.instructions)
        if has_barrier:
            assert uses_shared, kernel.name

    def test_reconvergence_annotated(self, abbrev, kernel):
        for inst in kernel.instructions:
            if inst.is_branch and inst.may_diverge:
                assert inst.reconv_pc >= 0, \
                    f"{kernel.name} pc{inst.pc} missing reconvergence"

    def test_all_code_reachable(self, abbrev, kernel):
        instructions = kernel.instructions
        reachable = set()
        work = [0]
        while work:
            pc = work.pop()
            if pc in reachable or pc >= len(instructions):
                continue
            reachable.add(pc)
            inst = instructions[pc]
            if inst.is_branch:
                work.append(inst.target_pc)
                if inst.may_diverge:
                    work.append(pc + 1)
            elif inst.is_exit:
                if inst.guard is not None:
                    work.append(pc + 1)
            else:
                work.append(pc + 1)
        unreachable = set(range(len(instructions))) - reachable
        # BFS's loop tail EXIT is a deliberate assembler-contract filler
        allowed = {pc for pc in unreachable
                   if instructions[pc].is_exit}
        assert unreachable == allowed, \
            f"{kernel.name}: dead code at {sorted(unreachable - allowed)}"

    def test_smem_footprint_fits_an_sm(self, abbrev, kernel):
        assert kernel.smem_bytes <= 48 * 1024, kernel.name
