"""Independent validation of the benchmark golden models.

The golden references that classify SDCs are themselves validated here
against independent implementations (networkx BFS, scipy LU, numpy
linear solve, brute-force DP) so a bug in a golden model cannot
silently misclassify fault effects.
"""

import networkx as nx
import numpy as np
import pytest

from repro.bench import make_benchmark


class TestBFSGolden:
    def test_matches_networkx(self):
        bench = make_benchmark("bfs")
        offsets, edges = bench._graph()
        golden = bench._golden(offsets, edges)

        graph = nx.DiGraph()
        graph.add_nodes_from(range(bench.nodes))
        for node in range(bench.nodes):
            for e in range(offsets[node], offsets[node + 1]):
                graph.add_edge(node, int(edges[e]))
        lengths = nx.single_source_shortest_path_length(graph, 0)
        expected = np.full(bench.nodes, -1, dtype=np.int32)
        for node, dist in lengths.items():
            expected[node] = dist
        assert np.array_equal(golden, expected)


class TestLUDGolden:
    def test_matches_scipy(self):
        scipy_linalg = pytest.importorskip("scipy.linalg")
        bench = make_benchmark("lud")
        a = np.random.default_rng(3).random((16, 16)).astype(np.float32)
        a += np.eye(16, dtype=np.float32) * 16
        bench.size = 16
        combined = bench._golden(a).astype(np.float64)
        lower = np.tril(combined, -1) + np.eye(16)
        upper = np.triu(combined)
        # diagonally dominant: scipy's partial pivoting stays identity
        p, l_ref, u_ref = scipy_linalg.lu(a.astype(np.float64))
        assert np.allclose(p, np.eye(16))
        assert np.allclose(lower, l_ref, atol=1e-3)
        assert np.allclose(upper, u_ref, atol=1e-3)
        assert np.allclose(lower @ upper, a, atol=1e-3)


class TestGaussianGolden:
    def test_solves_the_system(self):
        bench = make_benchmark("gaussian")
        gen = np.random.default_rng(4)
        n = bench.size
        a = (gen.random((n, n), dtype=np.float32)
             + np.eye(n, dtype=np.float32) * n)
        b = gen.random(n, dtype=np.float32)
        ga, gb = bench._golden(a, b)
        # back-substitute the eliminated system and compare with solve
        x = np.zeros(n, dtype=np.float64)
        ga64, gb64 = ga.astype(np.float64), gb.astype(np.float64)
        for i in range(n - 1, -1, -1):
            x[i] = (gb64[i] - ga64[i, i + 1:] @ x[i + 1:]) / ga64[i, i]
        expected = np.linalg.solve(a.astype(np.float64),
                                   b.astype(np.float64))
        assert np.allclose(x, expected, atol=1e-3)


class TestNeedleGolden:
    def test_matches_bruteforce(self):
        bench = make_benchmark("needle")
        gen = np.random.default_rng(5)
        n = 8
        bench.size = n
        ref = gen.integers(-10, 11, (n, n), dtype=np.int32)
        init = np.zeros((n + 1, n + 1), dtype=np.int32)
        init[0, :] = -bench.penalty * np.arange(n + 1)
        init[:, 0] = -bench.penalty * np.arange(n + 1)
        golden = bench._golden(ref, init)

        # independent recursive formulation with memoisation
        import functools

        @functools.lru_cache(maxsize=None)
        def score(i, j):
            if i == 0:
                return -bench.penalty * j
            if j == 0:
                return -bench.penalty * i
            return max(score(i - 1, j - 1) + int(ref[i - 1, j - 1]),
                       score(i - 1, j) - bench.penalty,
                       score(i, j - 1) - bench.penalty)

        for i in range(n + 1):
            for j in range(n + 1):
                assert golden[i, j] == score(i, j)


class TestPathfinderGolden:
    def test_matches_bruteforce(self):
        bench = make_benchmark("pathfinder")
        bench.cols, bench.rows = 6, 4
        wall = np.arange(24, dtype=np.int32).reshape(4, 6) % 7
        bench_result = bench._golden(wall)

        def best_path_to(row, col):
            if row == 0:
                return int(wall[0, col])
            candidates = [best_path_to(row - 1, c)
                          for c in (col - 1, col, col + 1)
                          if 0 <= c < bench.cols]
            return int(wall[row, col]) + min(candidates)

        expected = [best_path_to(3, c) for c in range(6)]
        assert list(bench_result) == expected


class TestHotspotGolden:
    def test_energy_plausibility(self):
        """The stencil pulls temperatures toward neighbours+ambient:
        the spread of the field must not increase."""
        bench = make_benchmark("hotspot")
        gen = np.random.default_rng(6)
        temp = (gen.random((32, 32), dtype=np.float32) * 40 + 60).astype(
            np.float32)
        power = np.zeros((32, 32), dtype=np.float32)
        out = bench._golden(temp, power)
        assert out.std() <= temp.std()


class TestSRADGolden:
    def test_zero_lambda_is_identity(self):
        bench = make_benchmark("srad2")
        bench.lam = 0.0
        image = (np.random.default_rng(7).random((32, 32),
                                                 dtype=np.float32) + 0.5)
        out = bench._golden(image.astype(np.float32))
        assert np.allclose(out, image, atol=1e-6)

    def test_diffusion_smooths(self):
        bench = make_benchmark("srad2")
        bench.iterations = 5
        image = (np.random.default_rng(8).random((32, 32),
                                                 dtype=np.float32) + 0.5)
        out = bench._golden(image.astype(np.float32))
        assert out.std() < image.std()


class TestKMeansGolden:
    def test_assignment_is_nearest(self):
        bench = make_benchmark("kmeans")
        gen = np.random.default_rng(9)
        points = gen.random((50, 4), dtype=np.float32) * 10
        clusters = gen.random((5, 4), dtype=np.float32) * 10
        membership = bench._assign_golden(points, clusters)
        dists = ((points[:, None, :].astype(np.float64)
                  - clusters[None, :, :]) ** 2).sum(axis=2)
        assert np.array_equal(membership, dists.argmin(axis=1))


class TestBackpropGolden:
    def test_sigmoid_range(self):
        # the layerforward golden clamps into (0, 1) by construction
        bench = make_benchmark("backprop")
        from repro.sim.device import Device

        dev = Device("RTX2060")
        state = bench.build(dev)
        bench.execute(dev, state)
        hidden = dev.read_array(state["ph"], (16,), np.float32)
        assert ((hidden > 0) & (hidden < 1)).all()
