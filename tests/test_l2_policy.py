"""The l2_service_all configuration (paper section II.B ablation)."""

import dataclasses

import numpy as np
import pytest

from repro.bench import make_benchmark
from repro.sim.cards import rtx_2060
from repro.sim.device import Device
from repro.sim.kernel import Kernel

LOAD_STORE = Kernel("load_store", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    LDG R10, [R9]
    IADD R10, R10, 1
    STG [R9], R10
    EXIT
""", num_params=1)


def bypass_card():
    return dataclasses.replace(rtx_2060(), l2_service_all=False)


class TestL2Bypass:
    def test_functional_correctness_preserved(self):
        dev = Device(bypass_card())
        src = np.arange(32, dtype=np.uint32)
        ptr = dev.to_device(src)
        dev.launch(LOAD_STORE, grid=1, block=32, params=[ptr])
        assert np.array_equal(dev.read_array(ptr, (32,), np.uint32),
                              src + 1)

    def test_l2_not_used_for_global(self):
        dev = Device(bypass_card())
        ptr = dev.to_device(np.arange(32, dtype=np.uint32))
        before = dev.gpu.l2.stats.accesses
        dev.launch(LOAD_STORE, grid=1, block=32, params=[ptr])
        assert dev.gpu.l2.stats.accesses == before

    def test_texture_still_uses_l2(self):
        tex_kernel = Kernel("tex_read", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    TLD R10, [R9]
    EXIT
""", num_params=1)
        dev = Device(bypass_card())
        ptr = dev.to_device(np.arange(32, dtype=np.uint32))
        dev.launch(tex_kernel, grid=1, block=32, params=[ptr])
        assert dev.gpu.l2.stats.accesses > 0

    def test_bypass_is_slower(self):
        cycles = {}
        for label, card in (("all", rtx_2060()), ("tex", bypass_card())):
            dev = Device(card)
            assert make_benchmark("pathfinder").run(dev)
            cycles[label] = dev.cycle
        assert cycles["tex"] >= cycles["all"]

    def test_benchmarks_still_pass(self):
        for name in ("vectoradd", "bfs"):
            dev = Device(bypass_card())
            assert make_benchmark(name).run(dev), name
