"""Campaign controller: profiling, execution, logging, aggregation."""

import json

import pytest

from repro.analysis import avf as avf_mod
from repro.faults.campaign import (Campaign, CampaignConfig,
                                   profile_application)
from repro.faults.classify import FaultEffect
from repro.faults.parser import aggregate_records, load_records, merge_logs
from repro.faults.targets import Structure


class TestProfiling:
    def test_profile_vectoradd(self):
        profile, golden = profile_application("vectoradd", "RTX2060")
        assert golden.passed and golden.status == "completed"
        assert set(profile.kernels) == {"vectorAdd"}
        kp = profile.kernels["vectorAdd"]
        assert kp.invocations == 1
        assert kp.total_cycles == profile.total_cycles == golden.cycles
        assert kp.regs_per_thread >= 14
        assert 0 < kp.occupancy <= 1
        assert kp.cores_used

    def test_profile_multi_kernel_app(self):
        profile, _ = profile_application("gaussian", "RTX2060")
        assert set(profile.kernels) == {"Fan1", "Fan2"}
        assert profile.kernels["Fan1"].invocations == 15
        weights = [profile.kernel_weight(k) for k in profile.kernels]
        assert sum(weights) == pytest.approx(1.0)

    def test_windows_are_disjoint_and_ordered(self):
        profile, _ = profile_application("gaussian", "RTX2060")
        windows = sorted(w for kp in profile.kernels.values()
                         for w in kp.windows)
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert e1 <= s2

    def test_app_occupancy_weighted(self):
        profile, _ = profile_application("srad2", "RTX2060")
        occ = profile.app_occupancy()
        lo = min(k.occupancy for k in profile.kernels.values())
        hi = max(k.occupancy for k in profile.kernels.values())
        assert lo <= occ <= hi


class TestCampaignExecution:
    def make_result(self, tmp_path=None, **overrides):
        kwargs = dict(benchmark="vectoradd", card="RTX2060",
                      structures=(Structure.REGISTER_FILE,),
                      runs_per_structure=8, seed=11)
        kwargs.update(overrides)
        if tmp_path is not None:
            kwargs["log_path"] = tmp_path / "campaign.jsonl"
        return Campaign(CampaignConfig(**kwargs)).run()

    def test_counts_cover_all_runs(self):
        result = self.make_result()
        assert result.runs("vectorAdd", Structure.REGISTER_FILE) == 8

    def test_failure_ratio_bounds(self):
        result = self.make_result()
        fr = result.failure_ratio("vectorAdd", Structure.REGISTER_FILE)
        assert 0.0 <= fr <= 1.0

    def test_determinism_same_seed(self):
        a = self.make_result()
        b = self.make_result()
        assert a.counts == b.counts

    def test_different_seeds_may_differ_but_are_valid(self):
        result = self.make_result(seed=99)
        total = sum(result.counts["vectorAdd"][
                    Structure.REGISTER_FILE].values())
        assert total == 8

    def test_log_roundtrip(self, tmp_path):
        result = self.make_result(tmp_path)
        records = load_records(tmp_path / "campaign.jsonl")
        assert len(records) == 8
        assert aggregate_records(records) == result.counts

    def test_no_smem_structure_synthesized(self):
        result = self.make_result(structures=(Structure.SHARED_MEM,))
        effects = result.counts["vectorAdd"][Structure.SHARED_MEM]
        assert effects == {FaultEffect.MASKED: 8}
        assert all(rec["synthesized"] for rec in result.records)

    def test_summary_text(self):
        result = self.make_result()
        text = result.summary()
        assert "vectorAdd" in text and "register_file" in text

    def test_kernel_filter(self):
        result = Campaign(CampaignConfig(
            benchmark="gaussian", card="RTX2060",
            structures=(Structure.REGISTER_FILE,),
            runs_per_structure=3, kernels=("Fan1",), seed=5)).run()
        assert set(result.counts) == {"Fan1"}

    def test_default_structures_from_card(self):
        config = CampaignConfig(benchmark="vectoradd", card="GTXTitan")
        assert Structure.L1D_CACHE not in config.resolved_structures()
        assert Structure.L2_CACHE in config.resolved_structures()


class TestParserMerge:
    def test_merge_logs_rejects_mismatched_campaigns(self, tmp_path):
        # different seeds -> different fingerprints -> different
        # campaigns; silently concatenating them would fabricate a
        # 6-run campaign that never existed
        for i, seed in enumerate((1, 2)):
            Campaign(CampaignConfig(
                benchmark="vectoradd", card="RTX2060",
                structures=(Structure.REGISTER_FILE,),
                runs_per_structure=3, seed=seed,
                log_path=tmp_path / f"batch{i}.jsonl")).run()
        paths = [tmp_path / "batch0.jsonl", tmp_path / "batch1.jsonl"]
        with pytest.raises(ValueError, match="different campaigns"):
            merge_logs(paths)
        counts = merge_logs(paths, force=True)
        total = sum(counts["vectorAdd"][Structure.REGISTER_FILE].values())
        assert total == 6

    def test_merge_logs_dedups_same_campaign_shards(self, tmp_path):
        log = tmp_path / "batch.jsonl"
        Campaign(CampaignConfig(
            benchmark="vectoradd", card="RTX2060",
            structures=(Structure.REGISTER_FILE,),
            runs_per_structure=3, seed=1, log_path=log)).run()
        # the same log twice = two shards with fully overlapping runs
        counts = merge_logs([log, log])
        total = sum(counts["vectorAdd"][Structure.REGISTER_FILE].values())
        assert total == 3

    def test_bad_json_raises(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad JSON"):
            load_records(bad)


class TestInvocationTargeting:
    def test_single_invocation_window(self):
        from repro.faults.campaign import profile_application

        profile, _ = profile_application("gaussian", "RTX2060")
        windows = profile.kernels["Fan1"].windows
        result = Campaign(CampaignConfig(
            benchmark="gaussian", card="RTX2060",
            structures=(Structure.REGISTER_FILE,),
            runs_per_structure=4, kernels=("Fan1",),
            invocation=3, seed=8)).run()
        start, end = windows[3]
        for record in result.records:
            cycle = record["mask"]["cycle"]
            assert start <= cycle < end

    def test_invocation_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Campaign(CampaignConfig(
                benchmark="vectoradd", card="RTX2060",
                structures=(Structure.REGISTER_FILE,),
                runs_per_structure=1, invocation=5, seed=1)).run()
