"""Host-side Device API: memcpy semantics, typed reads, budgets."""

import numpy as np
import pytest

from repro.sim.device import Device, RunOptions
from repro.sim.kernel import Kernel

STORE_TID = Kernel("store_tid", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    STG [R9], R0
    EXIT
""", num_params=1)


class TestMemcpy:
    def test_roundtrip_float32(self, device):
        data = np.linspace(0, 1, 100, dtype=np.float32)
        ptr = device.to_device(data)
        back = device.read_array(ptr, (100,), np.float32)
        assert np.array_equal(back, data)

    def test_roundtrip_int32_2d(self, device):
        data = np.arange(24, dtype=np.int32).reshape(4, 6)
        ptr = device.to_device(data)
        back = device.read_array(ptr, (4, 6), np.int32)
        assert np.array_equal(back, data)

    def test_noncontiguous_input(self, device):
        data = np.arange(20, dtype=np.int32)[::2]
        ptr = device.to_device(data)
        assert np.array_equal(device.read_array(ptr, (10,), np.int32),
                              data)

    def test_host_write_updates_resident_l2_lines(self, device):
        # a kernel pulls data into the L2; a host write afterwards must
        # be visible to the next kernel despite the resident line
        src = np.arange(32, dtype=np.uint32)
        p_out = device.to_device(src)
        device.launch(STORE_TID, grid=1, block=32, params=[p_out])
        device.memcpy_htod(p_out, np.full(32, 9, dtype=np.uint32))
        back = device.read_array(p_out, (32,), np.uint32)
        assert (back == 9).all()

    def test_host_read_sees_dirty_l2_data(self, device):
        p_out = device.malloc(128)
        device.launch(STORE_TID, grid=1, block=32, params=[p_out])
        # stores live dirty in L2; host_read must observe them
        assert np.array_equal(device.read_array(p_out, (32,), np.uint32),
                              np.arange(32, dtype=np.uint32))
        raw_dram = device.gpu.memory.data[p_out:p_out + 128].view("<u4")
        resident = device.gpu.l2.peek(p_out)
        assert resident is not None  # the interesting case was exercised

    def test_alloc_like(self, device):
        arr = np.zeros((8, 8), dtype=np.float32)
        ptr = device.alloc_like(arr)
        assert device.read_array(ptr, (64,), np.float32).nbytes == 256


class TestBudgets:
    def test_budget_cleared(self, device):
        with pytest.warns(DeprecationWarning):
            device.set_cycle_budget(10)
        with pytest.warns(DeprecationWarning):
            device.set_cycle_budget(None)
        p_out = device.malloc(128)
        device.launch(STORE_TID, grid=1, block=32, params=[p_out])

    def test_budget_via_options(self):
        dev = Device("RTX2060", RunOptions(cycle_budget=100_000))
        p_out = dev.malloc(128)
        dev.launch(STORE_TID, grid=1, block=32, params=[p_out])

    def test_empty_injector_via_options(self):
        from repro.faults.injector import Injector

        dev = Device("RTX2060", RunOptions(injector=Injector([])))
        p_out = dev.malloc(128)
        dev.launch(STORE_TID, grid=1, block=32, params=[p_out])


class TestDeprecatedSetters:
    """The ``Device.set_*`` mutators still work but warn; everything
    else in the suite goes through :class:`RunOptions`."""

    def test_set_cycle_budget_warns(self, device):
        with pytest.warns(DeprecationWarning,
                          match=r"set_cycle_budget\(\) is deprecated"):
            device.set_cycle_budget(10)

    def test_set_injector_warns(self, device):
        from repro.faults.injector import Injector

        with pytest.warns(DeprecationWarning,
                          match=r"set_injector\(\) is deprecated"):
            device.set_injector(Injector([]))

    def test_set_scheduler_policy_warns(self, device):
        with pytest.warns(DeprecationWarning,
                          match=r"set_scheduler_policy\(\) is deprecated"):
            device.set_scheduler_policy("lrr")


class TestCardSelection:
    def test_string_card(self):
        assert Device("gtxtitan").config.name == "GTXTitan"

    def test_config_card(self):
        from repro.sim.cards import quadro_gv100

        assert Device(quadro_gv100()).config.num_sms == 80
