"""The memory pipeline: caches, coalescing, atomics, violations."""

import numpy as np
import pytest

from repro.sim.device import Device
from repro.sim.errors import MemoryViolation
from repro.sim.kernel import Kernel

PROLOGUE = """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
"""


def launch(dev, source, params, n=32, smem=0, local=0, grid=1):
    kernel = Kernel("mem_test", source, num_params=len(params),
                    smem_bytes=smem, local_bytes=local)
    return dev.launch(kernel, grid=grid, block=n, params=params)


class TestGlobalLoadsStores:
    def test_load_store_roundtrip(self):
        dev = Device("RTX2060")
        src = np.arange(32, dtype=np.uint32) * 3
        p_in = dev.to_device(src)
        p_out = dev.malloc(128)
        launch(dev, PROLOGUE + """
    LDC R10, c[0x4]
    IADD R11, R10, R3
    LDG R12, [R11]
    IADD R12, R12, 1
    STG [R9], R12
    EXIT
""", [p_out, p_in])
        assert np.array_equal(dev.read_array(p_out, (32,), np.uint32),
                              src + 1)

    def test_coalesced_warp_load_is_one_l1_access(self):
        dev = Device("RTX2060")
        src = np.arange(32, dtype=np.uint32)
        p_in = dev.to_device(src)
        p_out = dev.malloc(128)
        launch(dev, PROLOGUE + """
    LDC R10, c[0x4]
    IADD R11, R10, R3
    LDG R12, [R11]
    STG [R9], R12
    EXIT
""", [p_out, p_in])
        l1 = dev.gpu.cores[0].l1d
        assert l1.stats.accesses == 1  # 32 lanes, one 128-byte segment

    def test_strided_load_splits_segments(self):
        dev = Device("RTX2060")
        src = np.zeros(32 * 32, dtype=np.uint32)
        p_in = dev.to_device(src)
        p_out = dev.malloc(128)
        launch(dev, PROLOGUE + """
    LDC R10, c[0x4]
    SHL R12, R0, 7           ; tid * 128 bytes: one line per lane
    IADD R11, R10, R12
    LDG R12, [R11]
    STG [R9], R12
    EXIT
""", [p_out, p_in])
        assert dev.gpu.cores[0].l1d.stats.accesses == 32

    def test_l1_hit_after_first_touch(self):
        dev = Device("RTX2060")
        src = np.arange(32, dtype=np.uint32)
        p_in = dev.to_device(src)
        p_out = dev.malloc(128)
        launch(dev, PROLOGUE + """
    LDC R10, c[0x4]
    IADD R11, R10, R3
    LDG R12, [R11]
    LDG R13, [R11]
    IADD R12, R12, R13
    STG [R9], R12
    EXIT
""", [p_out, p_in])
        l1 = dev.gpu.cores[0].l1d
        assert l1.stats.hits == 1 and l1.stats.misses == 1

    def test_store_write_evicts_l1(self):
        # store to a line resident in L1 invalidates it (write-evict)
        dev = Device("RTX2060")
        src = np.arange(32, dtype=np.uint32)
        p_in = dev.to_device(src)
        p_out = dev.malloc(128)
        launch(dev, PROLOGUE + """
    LDC R10, c[0x4]
    IADD R11, R10, R3
    LDG R12, [R11]           ; line into L1
    STG [R11], R12           ; write-evict
    LDG R13, [R11]           ; must miss again
    STG [R9], R13
    EXIT
""", [p_out, p_in])
        assert dev.gpu.cores[0].l1d.stats.misses == 2

    def test_stores_reach_l2_and_host_sees_them(self):
        dev = Device("RTX2060")
        p_out = dev.malloc(128)
        launch(dev, PROLOGUE + """
    MOV R10, 77
    STG [R9], R10
    EXIT
""", [p_out])
        assert (dev.read_array(p_out, (32,), np.uint32) == 77).all()
        # the data sits dirty in L2, not yet in DRAM
        assert dev.gpu.l2.stats.accesses > 0

    def test_titan_global_bypasses_l1(self):
        dev = Device("GTXTitan")
        src = np.arange(32, dtype=np.uint32)
        p_in = dev.to_device(src)
        p_out = dev.malloc(128)
        launch(dev, PROLOGUE + """
    LDC R10, c[0x4]
    IADD R11, R10, R3
    LDG R12, [R11]
    STG [R9], R12
    EXIT
""", [p_out, p_in])
        assert dev.gpu.cores[0].l1d is None
        assert dev.gpu.l2.stats.accesses > 0


class TestTexturePath:
    def test_tld_goes_through_l1t(self):
        dev = Device("RTX2060")
        src = np.arange(32, dtype=np.uint32)
        p_in = dev.to_device(src)
        p_out = dev.malloc(128)
        launch(dev, PROLOGUE + """
    LDC R10, c[0x4]
    IADD R11, R10, R3
    TLD R12, [R11]
    STG [R9], R12
    EXIT
""", [p_out, p_in])
        core = dev.gpu.cores[0]
        assert core.l1t.stats.accesses == 1
        assert core.l1d.stats.accesses == 0
        assert np.array_equal(dev.read_array(p_out, (32,), np.uint32), src)


class TestAtomics:
    def test_atom_add_returns_old(self):
        dev = Device("RTX2060")
        p_ctr = dev.to_device(np.zeros(1, dtype=np.uint32))
        p_out = dev.malloc(128)
        launch(dev, PROLOGUE + """
    LDC R10, c[0x4]
    MOV R11, 1
    ATOM.ADD R12, [R10], R11
    STG [R9], R12
    EXIT
""", [p_out, p_ctr])
        old = dev.read_array(p_out, (32,), np.uint32)
        assert sorted(old) == list(range(32))  # each lane a unique ticket
        assert dev.read_array(p_ctr, (1,), np.uint32)[0] == 32

    def test_red_add_no_return(self):
        dev = Device("RTX2060")
        p_ctr = dev.to_device(np.zeros(1, dtype=np.uint32))
        launch(dev, PROLOGUE + """
    LDC R10, c[0x4]
    MOV R11, 2
    RED.ADD [R10], R11
    EXIT
""", [p_ctr, p_ctr])
        assert dev.read_array(p_ctr, (1,), np.uint32)[0] == 64

    def test_atom_max(self):
        dev = Device("RTX2060")
        p_best = dev.to_device(np.zeros(1, dtype=np.uint32))
        launch(dev, PROLOGUE + """
    LDC R10, c[0x4]
    ATOM.MAX R12, [R10], R0
    EXIT
""", [p_best, p_best])
        assert dev.read_array(p_best, (1,), np.uint32)[0] == 31


class TestViolations:
    def test_wild_global_load_crashes(self):
        dev = Device("RTX2060")
        p_out = dev.malloc(128)
        with pytest.raises(MemoryViolation):
            launch(dev, PROLOGUE + """
    MOV R11, 0x700000
    LDG R12, [R11]
    STG [R9], R12
    EXIT
""", [p_out])

    def test_misaligned_global_crashes(self):
        dev = Device("RTX2060")
        p_out = dev.malloc(128)
        with pytest.raises(MemoryViolation, match="misaligned"):
            launch(dev, PROLOGUE + """
    IADD R11, R9, 2
    LDG R12, [R11]
    EXIT
""", [p_out])

    def test_shared_beyond_sm_window_crashes(self):
        dev = Device("RTX2060")
        p_out = dev.malloc(128)
        with pytest.raises(MemoryViolation):
            launch(dev, PROLOGUE + """
    MOV R11, 0x100000
    LDS R12, [R11]
    EXIT
""", [p_out], smem=256)

    def test_shared_within_window_aliases_silently(self):
        # beyond the CTA's allocation but inside the SM window: silent
        # corruption (wraps into the CTA's own array), like hardware
        dev = Device("RTX2060")
        p_out = dev.malloc(128)
        launch(dev, PROLOGUE + """
    MOV R10, 123
    STS [RZ], R10
    LDS R12, [0x400]         ; 1 KB past a 256-byte allocation
    STG [R9], R12
    EXIT
""", [p_out], smem=256)
        assert (dev.read_array(p_out, (32,), np.uint32) == 123).all()

    def test_local_out_of_bounds_crashes(self):
        dev = Device("RTX2060")
        p_out = dev.malloc(128)
        with pytest.raises(MemoryViolation):
            launch(dev, PROLOGUE + """
    MOV R11, 0x40
    LDL R12, [R11]
    EXIT
""", [p_out], local=16)


class TestLocalMemory:
    def test_local_is_thread_private(self):
        dev = Device("RTX2060")
        p_out = dev.malloc(128)
        launch(dev, PROLOGUE + """
    STL [RZ], R0             ; each lane stores its tid at local[0]
    LDL R12, [RZ]
    STG [R9], R12
    EXIT
""", [p_out], local=16)
        assert np.array_equal(dev.read_array(p_out, (32,), np.uint32),
                              np.arange(32, dtype=np.uint32))
