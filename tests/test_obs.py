"""Campaign observability: telemetry probes, metrics sidecar, event
stream, and the executor robustness fixes that ride along (resume
append, progress consistency, dead-worker/stall guard, torn tails)."""

import dataclasses
import json
import os
import signal
import time

import pytest

from repro.analysis.metrics import (find_metrics_path, load_metrics,
                                    render_metrics)
from repro.cli import main as cli_main
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.executor import (CampaignExecutor, ProgressReporter,
                                   RunSpec, WorkerPoolError, execute_run)
from repro.faults.parser import load_records, merge_logs
from repro.faults.targets import Structure
from repro.obs import (NULL, EventLog, MetricsCollector, NullEventLog,
                       Telemetry, derived_cycle_fields, events_path_for,
                       metrics_path_for, telemetry_for)


def make_config(**overrides):
    kwargs = dict(benchmark="vectoradd", card="RTX2060",
                  structures=(Structure.REGISTER_FILE,),
                  runs_per_structure=6, seed=11)
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


def make_specs(n, structure=Structure.REGISTER_FILE, kernel="k"):
    """Minimal hand-built specs for run_fn-substituted executor tests."""
    return [RunSpec(benchmark="vectoradd", card="RTX2060", kernel=kernel,
                    structure=structure, run_index=i, seed=i,
                    windows=((0, 100),), regs_per_thread=8,
                    smem_bytes=0, local_bytes=0, golden_cycles=100,
                    cycle_budget=200) for i in range(n)]


def fake_record(spec):
    """A structurally valid record without any simulation."""
    return {"benchmark": spec.benchmark, "card": spec.card,
            "kernel": spec.kernel, "structure": spec.structure.value,
            "run": spec.run_index, "effect": "Masked",
            "golden_cycles": spec.golden_cycles, "synthesized": False}


def _die_on_run_one(spec):  # module-level: fork pickles by reference
    if spec.run_index == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return fake_record(spec)


def _hang_on_run_one(spec):
    if spec.run_index == 1:
        time.sleep(300)
    return fake_record(spec)


def strip_observability(records):
    """Records with the opt-in telemetry annotations removed."""
    return [{k: v for k, v in record.items()
             if k not in ("timings", "worker")} for record in records]


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestTelemetry:
    def test_counts_and_timers(self):
        clock = FakeClock()
        telem = Telemetry(clock=clock)
        telem.count("restores")
        telem.count("restores", 2)
        with telem.timer("simulate"):
            clock.now += 1.5
        assert telem.counters == {"restores": 3}
        assert telem.seconds == {"simulate": 1.5}
        assert telem.as_dict() == {"restores": 3, "simulate": 1.5}

    def test_null_is_free_and_shared(self):
        null = telemetry_for(False)
        assert null is NULL and not null.enabled
        null.count("x")
        null.add_time("y", 1.0)
        with null.timer("z"):
            pass
        assert null.as_dict() == {}
        assert telemetry_for(True).enabled


class TestDerivedCycleFields:
    def test_prefers_timings(self):
        record = {"golden_cycles": 100,
                  "timings": {"cycles_simulated": 40,
                              "skipped_fast_forward": 60}}
        fields = derived_cycle_fields(record)
        assert fields["cycles_simulated"] == 40
        assert fields["skipped_fast_forward"] == 60

    def test_reconstructs_without_timings(self):
        golden = {"golden_cycles": 100}
        assert derived_cycle_fields(
            {**golden, "synthesized": True})["skipped_synthesized"] == 100
        assert derived_cycle_fields(
            {**golden, "prescreened": True})["skipped_prescreen"] == 100
        converged = derived_cycle_fields({**golden, "terminated_at": 30})
        assert converged["cycles_simulated"] == 30
        assert converged["skipped_convergence"] == 70
        full = derived_cycle_fields({**golden, "cycles": 100})
        assert full["cycles_simulated"] == 100
        assert full["skipped_convergence"] == 0


class TestTelemetryRecordFields:
    def test_default_off_record_is_clean(self):
        spec = Campaign(make_config(runs_per_structure=1)).plan()[0]
        record = execute_run(spec)
        assert "timings" not in record
        assert "worker" not in record

    def test_timings_attached_and_consistent(self):
        spec = Campaign(make_config(runs_per_structure=1,
                                    early_stop="off")).plan()[0]
        record = execute_run(dataclasses.replace(spec, telemetry=True))
        timings = record["timings"]
        assert record["worker"] == 0
        for key in ("restore_s", "simulate_s", "classify_s", "total_s"):
            assert timings[key] >= 0.0
        assert timings["cycles_simulated"] == record["cycles"]
        assert timings["skipped_fast_forward"] == 0
        assert timings["fast_forwarded"] is False
        assert timings["loop_iterations"] > 0

    def test_classification_identical_with_telemetry(self):
        spec = Campaign(make_config(runs_per_structure=2)).plan()[1]
        plain = execute_run(spec)
        annotated = execute_run(dataclasses.replace(spec, telemetry=True))
        assert strip_observability([annotated]) == [plain]

    def test_instant_runs_attribute_skipped_cycles(self):
        spec = make_specs(1)[0]
        synth = execute_run(dataclasses.replace(
            spec, synthesized=True, telemetry=True))
        assert synth["timings"]["skipped_synthesized"] == 100
        assert synth["timings"]["cycles_simulated"] == 0
        prescreened = execute_run(dataclasses.replace(
            spec, prescreened=True, prescreen_reason="dead register",
            telemetry=True))
        assert prescreened["timings"]["skipped_prescreen"] == 100


class TestCampaignParity:
    """The acceptance bar: observability must change no result."""

    def _run(self, tmp_path, tag, jobs, metrics):
        config = make_config(
            log_path=tmp_path / f"{tag}.jsonl",
            checkpoint_dir=tmp_path / "ckpt",
            early_stop="full", metrics=metrics)
        return Campaign(config), Campaign(config).run(jobs=jobs)

    def test_enabled_vs_disabled_bit_identical(self, tmp_path):
        _, base = self._run(tmp_path, "off", jobs=1, metrics=False)
        _, obs1 = self._run(tmp_path, "on1", jobs=1, metrics=True)
        _, obs2 = self._run(tmp_path, "on2", jobs=2, metrics=True)
        want = json.dumps(base.records)
        assert json.dumps(strip_observability(obs1.records)) == want
        assert json.dumps(strip_observability(obs2.records)) == want
        assert json.dumps(str(base.counts)) == json.dumps(str(obs1.counts))
        assert json.dumps(str(base.counts)) == json.dumps(str(obs2.counts))

    def test_sidecar_deterministic_sections_jobs_independent(self, tmp_path):
        self._run(tmp_path, "j1", jobs=1, metrics=True)
        self._run(tmp_path, "j4", jobs=4, metrics=True)
        serial = load_metrics(tmp_path / "j1.jsonl")
        pooled = load_metrics(tmp_path / "j4.jsonl")
        for section in ("effects", "checkpoint", "savings"):
            assert (json.dumps(serial[section], sort_keys=True)
                    == json.dumps(pooled[section], sort_keys=True))

    def test_sidecar_schema_and_wall_clock_side(self, tmp_path):
        campaign = Campaign(make_config(
            log_path=tmp_path / "c.jsonl",
            checkpoint_dir=tmp_path / "ckpt", metrics=True))
        result = campaign.run(jobs=2)
        sidecar = load_metrics(tmp_path / "c.jsonl")
        assert sidecar["schema"] == 1
        assert sidecar["campaign"]["complete"] is True
        assert sidecar["campaign"]["total_runs"] == len(result.records)
        assert sidecar["campaign"]["executed"] == len(result.records)
        assert sidecar["campaign"]["jobs"] == 2
        assert sidecar["campaign"]["wall_s"] >= 0.0
        assert sum(sidecar["effects"].values()) == len(result.records)
        savings = sidecar["savings"]
        assert (savings["cycles_simulated"] + savings["cycles_skipped"]
                <= savings["golden_cycles_total"])
        assert savings["runs"]["simulated"] >= savings["runs"]["converged"]
        for stats in sidecar["latency"].values():
            assert stats["count"] > 0
            assert 0.0 <= stats["p50_s"] <= stats["p95_s"] <= stats["max_s"]
            assert sum(stats["histogram"].values()) == stats["count"]
        assert sidecar["workers"]
        for stats in sidecar["workers"].values():
            assert stats["runs"] > 0 and stats["busy_s"] >= 0.0
        assert campaign.last_metrics == sidecar

    def test_checkpoint_hits_accounted(self, tmp_path):
        self._run(tmp_path, "ck", jobs=1, metrics=True)
        sidecar = load_metrics(tmp_path / "ck.jsonl")
        checkpoint = sidecar["checkpoint"]
        assert checkpoint["untracked"] == 0
        assert (checkpoint["hits"] + checkpoint["misses"]
                == sidecar["savings"]["runs"]["simulated"])
        if checkpoint["hits"]:
            assert sidecar["savings"]["skipped_fast_forward"] > 0


class TestEventStream:
    def test_stream_brackets_the_campaign(self, tmp_path):
        log = tmp_path / "c.jsonl"
        Campaign(make_config(log_path=log, metrics=True)).run(jobs=1)
        events = [json.loads(line) for line in
                  events_path_for(log).read_text().splitlines()]
        assert events[0]["event"] == "campaign_start"
        assert events[0]["total"] == 6 and events[0]["jobs"] == 1
        assert events[-1]["event"] == "campaign_end"
        assert events[-1]["complete"] is True
        runs = [e for e in events if e["event"] == "run"]
        assert len(runs) == 6
        assert {(r["kernel"], r["structure"], r["run"]) for r in runs} \
            == {("vectorAdd", "register_file", i) for i in range(6)}
        assert all(r["total_s"] >= 0.0 for r in runs)

    def test_no_stream_without_metrics(self, tmp_path):
        log = tmp_path / "c.jsonl"
        Campaign(make_config(log_path=log)).run(jobs=1)
        assert not events_path_for(log).exists()
        assert not metrics_path_for(log).exists()

    def test_event_log_lazy_and_null(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventLog(path, clock=FakeClock(5.0)) as log:
            assert not path.exists()
            log.emit("campaign_start", total=1)
        assert json.loads(path.read_text()) == {
            "ts": 5.0, "event": "campaign_start", "total": 1}
        with NullEventLog() as null:
            null.emit("run")  # no-op, nowhere to write

    def test_run_events_carry_the_trace_chain(self, tmp_path):
        log = tmp_path / "c.jsonl"
        Campaign(make_config(log_path=log, metrics=True)).run(jobs=1)
        events = [json.loads(line) for line in
                  events_path_for(log).read_text().splitlines()]
        start = events[0]
        assert start["schema"] >= 2
        assert start["campaign"] == "local"
        assert start["trace"].startswith("local@")
        runs = [e for e in events if e["event"] == "run"]
        assert all(e["trace"] ==
                   f"{start['trace']}/{e['kernel']}:"
                   f"{e['structure']}:{e['run']}" for e in runs)

    def test_log_byte_identical_with_events_on_or_off(self, tmp_path):
        from repro.dist.protocol import canonical_log_text

        texts = {}
        for tag, jobs, metrics in (("off1", 1, False), ("on1", 1, True),
                                   ("off2", 2, False), ("on2", 2, True)):
            log = tmp_path / f"{tag}.jsonl"
            Campaign(make_config(
                log_path=log, checkpoint_dir=tmp_path / "ckpt",
                early_stop="full", metrics=metrics)).run(jobs=jobs)
            texts[tag] = canonical_log_text(load_records(log))
            # the event stream exists exactly when telemetry is on
            assert events_path_for(log).exists() == metrics
        assert len(set(texts.values())) == 1, \
            "telemetry or jobs count changed the canonical log"

    def test_executor_resume_appends_campaign_resume(self, tmp_path):
        log = tmp_path / "c.jsonl"
        specs = make_specs(4)
        CampaignExecutor(log_path=log, telemetry=True,
                         run_fn=fake_record).execute(specs[:2])
        first = [json.loads(line) for line in
                 events_path_for(log).read_text().splitlines()]
        assert first[0]["event"] == "campaign_start"
        assert first[-1]["event"] == "campaign_end"

        CampaignExecutor(log_path=log, telemetry=True, resume=True,
                         run_fn=fake_record).execute(specs)
        events = [json.loads(line) for line in
                  events_path_for(log).read_text().splitlines()]
        # the first session's stream survived the resume (append mode)
        assert events[:len(first)] == first
        resume = events[len(first)]
        assert resume["event"] == "campaign_resume"
        assert resume["total"] == 4 and resume["resumed"] == 2
        fresh = [e for e in events[len(first):] if e["event"] == "run"]
        assert sorted(e["run"] for e in fresh) == [2, 3]
        assert events[-1]["event"] == "campaign_end"


class TestResumeNeverTruncates:
    def test_resume_with_disjoint_plan_appends(self, tmp_path):
        log = tmp_path / "c.jsonl"
        first = make_specs(3, structure=Structure.REGISTER_FILE)
        CampaignExecutor(log_path=log, run_fn=fake_record).execute(first)
        assert len(load_records(log)) == 3

        # a changed plan: same campaign log, zero overlapping keys --
        # the old records must survive the resumed session
        second = make_specs(2, structure=Structure.L2_CACHE)
        CampaignExecutor(log_path=log, resume=True,
                         run_fn=fake_record).execute(second)
        records = load_records(log)
        assert len(records) == 5
        structures = [r["structure"] for r in records]
        assert structures[:3] == ["register_file"] * 3
        assert structures[3:] == ["l2_cache"] * 2

    def test_resume_missing_log_still_works(self, tmp_path):
        log = tmp_path / "fresh.jsonl"
        CampaignExecutor(log_path=log, resume=True,
                         run_fn=fake_record).execute(make_specs(2))
        assert len(load_records(log)) == 2

    def test_without_resume_still_overwrites(self, tmp_path):
        log = tmp_path / "c.jsonl"
        CampaignExecutor(log_path=log,
                         run_fn=fake_record).execute(make_specs(3))
        CampaignExecutor(log_path=log,
                         run_fn=fake_record).execute(make_specs(2))
        assert len(load_records(log)) == 2


class TestProgressConsistency:
    def test_instant_burst_does_not_spike_rate(self):
        clock = FakeClock()
        reporter = ProgressReporter(total=20, clock=clock,
                                    instant_total=10)
        clock.now = 4.0
        for _ in range(10):
            reporter.record({"effect": "Masked", "synthesized": True})
        for _ in range(2):
            reporter.record({"effect": "SDC"})
        # 12 completions, but only 2 simulated: the rendered rate and
        # the ETA must share the same (simulated) throughput model
        assert reporter.rate() == pytest.approx(0.5)
        assert reporter.eta_seconds() == pytest.approx(8 / 0.5)
        assert "0.50 runs/s" in reporter.render()
        assert f"ETA {8 / 0.5:.0f}s" in reporter.render()

    def test_fully_resumed_campaign_eta_zero(self):
        reporter = ProgressReporter(total=5, skipped=5, clock=FakeClock())
        assert reporter.eta_seconds() == 0.0
        assert "ETA 0s" in reporter.render()

    def test_no_estimate_before_first_simulated_run(self):
        clock = FakeClock()
        reporter = ProgressReporter(total=4, clock=clock, instant_total=2)
        clock.now = 2.0
        reporter.record({"effect": "Masked", "prescreened": True})
        # one instant completion: still no simulated-throughput sample
        assert reporter.rate() == 0.0
        assert reporter.eta_seconds() is None
        assert "ETA ?" in reporter.render()


class TestPoolGuards:
    def test_dead_worker_raises_instead_of_hanging(self, tmp_path):
        executor = CampaignExecutor(jobs=2, heartbeat_interval=0.1,
                                    run_fn=_die_on_run_one)
        with pytest.raises(WorkerPoolError, match="died"):
            executor.execute(make_specs(4))

    def test_dead_worker_error_names_missing_runs(self):
        executor = CampaignExecutor(jobs=2, heartbeat_interval=0.1,
                                    run_fn=_die_on_run_one)
        with pytest.raises(WorkerPoolError, match="k/register_file/1"):
            executor.execute(make_specs(4))

    def test_run_timeout_guards_stalls(self):
        executor = CampaignExecutor(jobs=2, heartbeat_interval=0.1,
                                    run_timeout=0.5,
                                    run_fn=_hang_on_run_one)
        started = time.monotonic()
        with pytest.raises(WorkerPoolError, match="run_timeout"):
            executor.execute(make_specs(3))
        assert time.monotonic() - started < 60

    def test_heartbeats_observable_while_silent(self, tmp_path):
        log = tmp_path / "c.jsonl"
        executor = CampaignExecutor(jobs=2, heartbeat_interval=0.05,
                                    run_timeout=0.5, log_path=log,
                                    telemetry=True,
                                    run_fn=_hang_on_run_one)
        with pytest.raises(WorkerPoolError):
            executor.execute(make_specs(3))
        events = [json.loads(line) for line in
                  events_path_for(log).read_text().splitlines()]
        beats = [e for e in events if e["event"] == "heartbeat"]
        assert beats and all(b["pending"] >= 1 for b in beats)
        assert events[-1]["event"] == "campaign_end"
        assert events[-1]["complete"] is False
        # the partial sidecar still lands, flagged incomplete
        assert load_metrics(log)["campaign"]["complete"] is False

    def test_run_timeout_validation(self):
        with pytest.raises(ValueError, match="run_timeout"):
            CampaignExecutor(run_timeout=0)


class TestTornTails:
    def _write(self, path, n_good, torn="{\"kernel\": \"k\", \"str"):
        lines = [json.dumps(fake_record(spec))
                 for spec in make_specs(n_good)]
        path.write_text("\n".join(lines) + "\n" + torn,
                        encoding="utf-8")

    def test_load_records_strict_by_default(self, tmp_path):
        log = tmp_path / "torn.jsonl"
        self._write(log, 2)
        with pytest.raises(ValueError, match="bad JSON record"):
            load_records(log)

    def test_load_records_opt_in_tolerance(self, tmp_path):
        log = tmp_path / "torn.jsonl"
        self._write(log, 2)
        assert len(load_records(log, tolerate_torn_tail=True)) == 2

    def test_mid_file_corruption_always_raises(self, tmp_path):
        log = tmp_path / "bad.jsonl"
        good = json.dumps(fake_record(make_specs(1)[0]))
        log.write_text(f"{good}\nnot json\n{good}\n", encoding="utf-8")
        with pytest.raises(ValueError, match=":2:"):
            load_records(log, tolerate_torn_tail=True)

    def test_merge_logs_tolerates_interrupted_batches(self, tmp_path):
        log = tmp_path / "torn.jsonl"
        self._write(log, 3)
        counts = merge_logs([log])
        assert sum(counts["k"][Structure.REGISTER_FILE].values()) == 3

    def test_report_cli_tolerates_torn_tail(self, tmp_path, capsys):
        log = tmp_path / "torn.jsonl"
        self._write(log, 3)
        assert cli_main(["report", str(log)]) == 0
        assert "register_file" in capsys.readouterr().out


class TestReportMetricsCli:
    def test_report_after_campaign(self, tmp_path, capsys):
        log = tmp_path / "c.jsonl"
        assert cli_main(["campaign", "--benchmark", "vectoradd",
                         "--structures", "register_file", "--runs", "4",
                         "--jobs", "2", "--metrics",
                         "--log", str(log)]) == 0
        out = capsys.readouterr().out
        assert f"metrics written to {metrics_path_for(log)}" in out

        assert cli_main(["report-metrics", str(log)]) == 0
        out = capsys.readouterr().out
        assert "4 runs" in out
        assert "runs/s" in out
        assert "checkpoint fast-forward" in out
        assert "cycles:" in out
        assert "worker" in out

    def test_accepts_sidecar_path_directly(self, tmp_path):
        assert find_metrics_path(tmp_path / "c.jsonl.metrics.json") \
            == tmp_path / "c.jsonl.metrics.json"
        assert find_metrics_path(tmp_path / "c.jsonl") \
            == tmp_path / "c.jsonl.metrics.json"

    def test_missing_sidecar_fails_cleanly(self, tmp_path, capsys):
        assert cli_main(["report-metrics",
                         str(tmp_path / "absent.jsonl")]) == 1
        assert "--metrics" in capsys.readouterr().err

    def test_render_interrupted_marker(self):
        collector = MetricsCollector(jobs=1, clock=FakeClock())
        doc = collector.finalize([], complete=False, total=7)
        text = render_metrics(doc)
        assert "INTERRUPTED" in text
        assert "7 runs" in text


class TestPercentile:
    """Pin the ceil-based nearest-rank definition of ``_percentile``.

    The former ``round()`` implementation banker's-rounded ``.5``
    ranks to the even neighbor, so p50 of an even-sized sample picked
    inconsistent sides depending on N.
    """

    @pytest.mark.parametrize("ordered, q, expected", [
        # singleton: every percentile is the one sample
        ([7.0], 0.50, 7.0),
        ([7.0], 0.95, 7.0),
        # nearest-rank on 1..4: ceil(0.5*4)=2 -> 2nd value (round()
        # at rank 1.5 used to banker's-round down to the 1st)
        ([1.0, 2.0, 3.0, 4.0], 0.50, 2.0),
        ([1.0, 2.0, 3.0, 4.0], 0.25, 1.0),
        ([1.0, 2.0, 3.0, 4.0], 0.75, 3.0),
        ([1.0, 2.0, 3.0, 4.0], 0.95, 4.0),
        # 1..10: ceil(0.5*10)=5 -> 5, ceil(0.95*10)=10 -> 10
        (list(map(float, range(1, 11))), 0.50, 5.0),
        (list(map(float, range(1, 11))), 0.95, 10.0),
        # 1..20: ceil(0.95*20)=19 -> 19 (not the max)
        (list(map(float, range(1, 21))), 0.95, 19.0),
        (list(map(float, range(1, 21))), 0.50, 10.0),
        # 1..5 (odd): ceil(0.5*5)=3 -> the true median
        ([1.0, 2.0, 3.0, 4.0, 5.0], 0.50, 3.0),
        # extremes clamp to the sample
        ([1.0, 2.0, 3.0], 0.0, 1.0),
        ([1.0, 2.0, 3.0], 1.0, 3.0),
        # empty sample
        ([], 0.50, 0.0),
    ])
    def test_nearest_rank_table(self, ordered, q, expected):
        from repro.obs.metrics import _percentile

        assert _percentile(ordered, q) == expected

    def test_propagation_summary_uses_fractional_q(self):
        # summarize_propagation must pass 0.50/0.95 (not 50/95, which
        # would clamp both p50 and p95 to the sample max)
        from repro.obs.propagation import summarize_propagation

        records = []
        for i, dist in enumerate([10, 20, 30, 40]):
            records.append({
                "structure": "register_file", "run": i,
                "propagation": {
                    "source": "trace", "injection_cycle": 100,
                    "sites": [{"fate": "consumed",
                               "fate_cycle": 100 + dist}],
                    "chain": [], "divergence": None,
                }})
        doc = summarize_propagation(records)
        ttr = doc["time_to_first_read_cycles"]
        assert ttr["p50"] == 20
        assert ttr["p95"] == 40
