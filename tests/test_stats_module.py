"""LaunchStats / StatsCollector accounting."""

import pytest

from repro.sim.stats import LaunchStats, StatsCollector


def make_stats(**kw):
    defaults = dict(kernel_name="k", launch_index=0, start_cycle=100,
                    max_warps_per_sm=32)
    defaults.update(kw)
    return LaunchStats(**defaults)


class TestLaunchStats:
    def test_cycles(self):
        stats = make_stats(end_cycle=350)
        assert stats.cycles == 250

    def test_occupancy(self):
        stats = make_stats()
        stats.busy_sm_cycles = 100
        stats.warp_cycles = 800  # 8 warps average
        assert stats.occupancy == pytest.approx(8 / 32)

    def test_occupancy_idle(self):
        assert make_stats().occupancy == 0.0

    def test_means(self):
        stats = make_stats()
        stats.busy_sm_cycles = 10
        stats.thread_cycles = 2560
        stats.cta_cycles = 20
        assert stats.mean_threads_per_sm == 256.0
        assert stats.mean_ctas_per_sm == 2.0


class TestStatsCollector:
    def test_launch_lifecycle(self):
        collector = StatsCollector()
        collector.begin_launch("k1", 0, 32)
        collector.on_issue(None)
        collector.on_issue(None)
        done = collector.end_launch(500)
        assert done.instructions == 2
        assert done.cycles == 500
        assert collector.launches == [done]
        assert collector.current is None

    def test_launch_indices_increment(self):
        collector = StatsCollector()
        collector.begin_launch("a", 0, 32)
        collector.end_launch(10)
        second = collector.begin_launch("b", 10, 32)
        assert second.launch_index == 1

    def test_issue_outside_launch_ignored(self):
        collector = StatsCollector()
        collector.on_issue(None)  # no current launch: no crash

    def test_total_cycles(self):
        collector = StatsCollector()
        collector.begin_launch("a", 0, 32)
        collector.end_launch(100)
        collector.begin_launch("b", 100, 32)
        collector.end_launch(250)
        assert collector.total_cycles() == 250

    def test_sample_weighted_by_delta(self):
        class FakeCTA:
            live_warp_count = 2

        class FakeCore:
            core_id = 3
            ctas = [FakeCTA()]

            def live_warp_count(self):
                return 2

            def live_thread_count(self):
                return 64

        collector = StatsCollector()
        collector.begin_launch("k", 0, 32)
        collector.sample([FakeCore()], delta=10)
        cur = collector.current
        assert cur.busy_sm_cycles == 10
        assert cur.warp_cycles == 20
        assert cur.thread_cycles == 640
        assert cur.cta_cycles == 10
        assert cur.cores_used == {3}
