"""Card models must reproduce the paper's Tables I and V exactly."""

import pytest

from repro.analysis.sizes import (structure_sizes_mb, table1_rows,
                                  total_injectable_mb)
from repro.faults.targets import Structure, chip_bits, supported_structures
from repro.sim.cards import CARDS, get_card, gtx_titan, quadro_gv100, \
    rtx_2060


class TestTableV:
    """Microarchitectural parameters (paper Table V)."""

    def test_rtx_2060(self):
        card = rtx_2060()
        assert card.num_sms == 30
        assert card.warp_size == 32
        assert card.max_threads_per_sm == 1024
        assert card.max_ctas_per_sm == 32
        assert card.registers_per_sm == 65536
        assert card.shared_mem_per_sm == 64 * 1024
        assert card.l1d.size_bytes == 64 * 1024
        assert card.l1t.size_bytes == 128 * 1024
        assert card.l2.size_bytes == 3 * 1024 * 1024
        assert card.technology_nm == 12
        assert card.raw_fit_per_bit == pytest.approx(1.8e-6)

    def test_quadro_gv100(self):
        card = quadro_gv100()
        assert card.num_sms == 80
        assert card.max_threads_per_sm == 2048
        assert card.shared_mem_per_sm == 96 * 1024
        assert card.l1d.size_bytes == 32 * 1024
        assert card.l2.size_bytes == 6 * 1024 * 1024
        assert card.raw_fit_per_bit == pytest.approx(1.8e-6)

    def test_gtx_titan(self):
        card = gtx_titan()
        assert card.num_sms == 14
        assert card.max_threads_per_sm == 2048
        assert card.max_ctas_per_sm == 16
        assert card.shared_mem_per_sm == 48 * 1024
        assert card.l1d is None  # "N/A" in the paper
        assert card.l1t.size_bytes == 48 * 1024
        assert card.l2.size_bytes == 1536 * 1024
        assert card.technology_nm == 28
        assert card.raw_fit_per_bit == pytest.approx(1.2e-5)


class TestTableI:
    """Chip-level structure sizes with 57-bit tags (paper Table I)."""

    @pytest.mark.parametrize("card_name,expected_mb", [
        ("RTX2060", {"Register File": 7.5, "Shared Memory": 1.875,
                     "L1 data cache": 1.98, "L1 texture cache": 3.96,
                     "L2 cache": 3.17}),
        ("QuadroGV100", {"Register File": 20.0, "Shared Memory": 7.5,
                         "L1 data cache": 2.64, "L1 texture cache": 10.56,
                         "L2 cache": 6.33}),
    ])
    def test_mb_sizes(self, card_name, expected_mb):
        rows = dict(table1_rows(get_card(card_name)))
        for label, mb in expected_mb.items():
            assert rows[label] / 1024 == pytest.approx(mb, abs=0.01), label

    def test_titan_kb_sizes(self):
        rows = dict(table1_rows(gtx_titan()))
        assert rows["Register File"] / 1024 == pytest.approx(3.5, abs=0.01)
        assert rows["Shared Memory"] == pytest.approx(672.0, abs=0.5)
        assert rows["L1 data cache"] == 0.0
        assert rows["L1 texture cache"] == pytest.approx(709.38, abs=0.5)
        assert rows["L1 instruction cache"] == pytest.approx(59.08, abs=0.1)
        assert rows["L2 cache"] / 1024 == pytest.approx(1.58, abs=0.01)

    def test_total_injected_areas_match_paper(self):
        # "18.5MB and 47MB in total for RTX 2060 and Quadro GV100"
        assert total_injectable_mb(rtx_2060()) == pytest.approx(18.5, abs=0.1)
        assert total_injectable_mb(quadro_gv100()) == pytest.approx(
            47.0, abs=0.1)

    def test_tag_overhead_ratio(self):
        # 57 tag bits per 128-byte line: 64 KB data -> 67.56 KB injectable
        card = rtx_2060()
        bits = chip_bits(Structure.L1D_CACHE, card) / card.num_sms
        assert bits / 8 / 1024 == pytest.approx(67.56, abs=0.01)


class TestRegistry:
    def test_three_cards_registered(self):
        assert set(CARDS) == {"RTX2060", "QuadroGV100", "GTXTitan"}

    @pytest.mark.parametrize("alias", ["rtx2060", "RTX 2060", "rtx-2060",
                                       "rtx_2060"])
    def test_aliases(self, alias):
        assert get_card(alias).name == "RTX2060"

    def test_unknown_card(self):
        with pytest.raises(KeyError):
            get_card("RTX9090")

    def test_titan_supported_structures_skip_l1d(self):
        structures = supported_structures(gtx_titan())
        assert Structure.L1D_CACHE not in structures
        assert Structure.REGISTER_FILE in structures

    def test_chip_bits_local_mem_zero(self):
        assert chip_bits(Structure.LOCAL_MEM, rtx_2060()) == 0
