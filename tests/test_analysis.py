"""AVF equations 1-3, derating factors, FIT rates, contributions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import avf as avf_mod
from repro.analysis import fit as fit_mod
from repro.faults.campaign import (AppProfile, CampaignConfig,
                                   CampaignResult, KernelProfile)
from repro.faults.classify import FaultEffect
from repro.faults.targets import CHIP_STRUCTURES, Structure, chip_bits
from repro.sim.cards import rtx_2060


def kernel_profile(name="k", cycles=1000, regs=16, smem=0,
                   threads_mean=256.0, ctas_mean=1.0, occupancy=0.25):
    return KernelProfile(
        name=name, windows=[(0, cycles)], total_cycles=cycles,
        regs_per_thread=regs, smem_bytes=smem, local_bytes=0,
        threads_per_cta=256, occupancy=occupancy,
        mean_threads_per_sm=threads_mean, mean_ctas_per_sm=ctas_mean,
        cores_used=[0], instructions=100)


def synthetic_result(kernels, counts, card="RTX2060"):
    """Build a CampaignResult from hand-written counts."""
    profile = AppProfile(
        benchmark="synthetic", card=card,
        total_cycles=sum(k.total_cycles for k in kernels),
        kernels={k.name: k for k in kernels})
    config = CampaignConfig(benchmark="synthetic", card=card,
                            structures=tuple(
                                {s for per in counts.values() for s in per}))
    return CampaignResult(config=config, profile=profile,
                          golden_cycles=profile.total_cycles,
                          records=[], counts=counts)


def effects(masked=0, sdc=0, crash=0, timeout=0, perf=0):
    out = {}
    if masked:
        out[FaultEffect.MASKED] = masked
    if sdc:
        out[FaultEffect.SDC] = sdc
    if crash:
        out[FaultEffect.CRASH] = crash
    if timeout:
        out[FaultEffect.TIMEOUT] = timeout
    if perf:
        out[FaultEffect.PERFORMANCE] = perf
    return out


class TestEquationOne:
    def test_failure_ratio(self):
        result = synthetic_result(
            [kernel_profile()],
            {"k": {Structure.REGISTER_FILE: effects(masked=60, sdc=25,
                                                    crash=10, timeout=5)}})
        assert result.failure_ratio("k", Structure.REGISTER_FILE) == \
            pytest.approx(0.40)

    def test_performance_not_a_failure(self):
        result = synthetic_result(
            [kernel_profile()],
            {"k": {Structure.REGISTER_FILE: effects(masked=50, perf=50)}})
        assert result.failure_ratio("k", Structure.REGISTER_FILE) == 0.0


class TestDeratingFactors:
    def test_df_reg_formula(self):
        # 16 regs/thread * 256 threads mean / 65536 regs per SM
        card = rtx_2060()
        kp = kernel_profile(regs=16, threads_mean=256.0)
        df = avf_mod.derating_factor(kp, Structure.REGISTER_FILE, card)
        assert df == pytest.approx(16 * 256 / 65536)

    def test_df_smem_formula(self):
        card = rtx_2060()
        kp = kernel_profile(smem=2048, ctas_mean=2.0)
        df = avf_mod.derating_factor(kp, Structure.SHARED_MEM, card)
        assert df == pytest.approx(2048 * 2 / (64 * 1024))

    def test_df_capped_at_one(self):
        card = rtx_2060()
        kp = kernel_profile(regs=255, threads_mean=1024.0)
        assert avf_mod.derating_factor(kp, Structure.REGISTER_FILE,
                                       card) == 1.0

    def test_df_is_one_for_caches(self):
        card = rtx_2060()
        kp = kernel_profile()
        assert avf_mod.derating_factor(kp, Structure.L2_CACHE, card) == 1.0

    def test_no_smem_kernel_zero_df(self):
        card = rtx_2060()
        kp = kernel_profile(smem=0)
        assert avf_mod.derating_factor(kp, Structure.SHARED_MEM, card) == 0.0


class TestEquationTwo:
    def test_kernel_avf_weighted_by_structure_size(self):
        card = rtx_2060()
        counts = {"k": {s: effects(masked=50, sdc=50)
                        for s in CHIP_STRUCTURES}}
        kp = kernel_profile(regs=255, threads_mean=1024.0, smem=64 * 1024,
                            ctas_mean=1.0)
        result = synthetic_result([kp], counts)
        # all FRs are 0.5 and both derating factors saturate at 1.0,
        # so AVF_kernel must be exactly 0.5
        assert avf_mod.kernel_avf(result, "k") == pytest.approx(0.5)

    def test_rf_only_campaign_scales_by_rf_share(self):
        card = rtx_2060()
        counts = {"k": {Structure.REGISTER_FILE: effects(sdc=100)}}
        kp = kernel_profile(regs=255, threads_mean=1024.0)
        result = synthetic_result([kp], counts)
        rf_bits = chip_bits(Structure.REGISTER_FILE, card)
        total = sum(chip_bits(s, card) for s in CHIP_STRUCTURES)
        assert avf_mod.kernel_avf(result, "k") == \
            pytest.approx(rf_bits / total)

    def test_titan_denominator_skips_l1d(self):
        counts = {"k": {Structure.REGISTER_FILE: effects(sdc=10)}}
        kp = kernel_profile(regs=255, threads_mean=2048.0)
        result = synthetic_result([kp], counts, card="GTXTitan")
        card = pytest.importorskip("repro.sim.cards").gtx_titan()
        total = sum(chip_bits(s, card) for s in CHIP_STRUCTURES)
        assert chip_bits(Structure.L1D_CACHE, card) == 0
        assert avf_mod.kernel_avf(result, "k") == pytest.approx(
            chip_bits(Structure.REGISTER_FILE, card) / total)


class TestEquationThree:
    def test_wavf_cycle_weighting(self):
        heavy = kernel_profile("heavy", cycles=900, regs=255,
                               threads_mean=1024.0)
        light = kernel_profile("light", cycles=100, regs=255,
                               threads_mean=1024.0)
        counts = {
            "heavy": {s: effects(sdc=10) for s in CHIP_STRUCTURES},
            "light": {s: effects(masked=10) for s in CHIP_STRUCTURES},
        }
        result = synthetic_result([heavy, light], counts)
        heavy_avf = avf_mod.kernel_avf(result, "heavy")
        assert avf_mod.weighted_avf(result) == \
            pytest.approx(0.9 * heavy_avf)

    @given(st.integers(0, 50), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_wavf_bounded(self, sdc_a, sdc_b):
        kernels = [kernel_profile("a", cycles=500, threads_mean=512.0),
                   kernel_profile("b", cycles=700, threads_mean=512.0)]
        counts = {
            "a": {Structure.REGISTER_FILE: effects(masked=50, sdc=sdc_a)},
            "b": {Structure.REGISTER_FILE: effects(masked=50, sdc=sdc_b)},
        }
        result = synthetic_result(kernels, counts)
        assert 0.0 <= avf_mod.weighted_avf(result) <= 1.0


class TestContributions:
    def test_shares_sum_to_one(self):
        counts = {"k": {s: effects(masked=50, sdc=50)
                        for s in CHIP_STRUCTURES}}
        kp = kernel_profile(regs=64, threads_mean=512.0, smem=4096,
                            ctas_mean=2.0)
        result = synthetic_result([kp], counts)
        shares = avf_mod.structure_contributions(result)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_all_masked_returns_empty(self):
        counts = {"k": {Structure.REGISTER_FILE: effects(masked=10)}}
        result = synthetic_result([kernel_profile()], counts)
        assert avf_mod.structure_contributions(result) == {}


class TestEffectBreakdown:
    def test_breakdown_sums_to_df(self):
        card = rtx_2060()
        kp = kernel_profile(regs=16, threads_mean=256.0)
        counts = {"k": {Structure.REGISTER_FILE:
                        effects(masked=25, sdc=25, crash=25, timeout=25)}}
        result = synthetic_result([kp], counts)
        breakdown = avf_mod.effect_breakdown(result,
                                             Structure.REGISTER_FILE)
        df = avf_mod.derating_factor(kp, Structure.REGISTER_FILE, card)
        assert sum(breakdown.values()) == pytest.approx(df)

    def test_underated_breakdown_sums_to_one(self):
        counts = {"k": {Structure.REGISTER_FILE:
                        effects(masked=40, sdc=60)}}
        result = synthetic_result([kernel_profile()], counts)
        breakdown = avf_mod.effect_breakdown(
            result, Structure.REGISTER_FILE, derated=False)
        assert sum(breakdown.values()) == pytest.approx(1.0)


class TestFIT:
    def test_structure_fit_formula(self):
        assert fit_mod.structure_fit(0.1, 1.8e-6, 10**6) == \
            pytest.approx(0.18)

    def test_chip_fit_sums_structures(self):
        counts = {"k": {s: effects(sdc=10) for s in CHIP_STRUCTURES}}
        kp = kernel_profile(regs=255, threads_mean=1024.0, smem=64 * 1024,
                            ctas_mean=1.0)
        result = synthetic_result([kp], counts)
        card = rtx_2060()
        expected = sum(chip_bits(s, card) for s in CHIP_STRUCTURES) \
            * card.raw_fit_per_bit  # every AVF is 1.0
        assert fit_mod.chip_fit(result) == pytest.approx(expected)

    def test_titan_raw_rate_dominates(self):
        # identical failure behaviour: the 28 nm card's FIT is larger
        # relative to its size because its raw FIT/bit is ~6.7x higher
        counts = {"k": {Structure.REGISTER_FILE: effects(sdc=10)}}
        kp = kernel_profile(regs=255, threads_mean=2048.0)
        fit_new = fit_mod.chip_fit(synthetic_result([kp], counts,
                                                    card="RTX2060"))
        fit_old = fit_mod.chip_fit(synthetic_result([kp], counts,
                                                    card="GTXTitan"))
        assert fit_old > fit_new  # despite the much smaller chip
