"""Batched lockstep execution: pack grouping, record parity with the
solo path across batch/jobs/early-stop, peel-off correctness, and the
plan-time persistent-model gate."""

import json

import pytest

from repro.dist.protocol import canonical_log_text
from repro.faults.batch_executor import (batch_eligible, execute_pack,
                                         group_packs)
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.executor import CampaignExecutor
from repro.faults.targets import Structure
from repro.obs.metrics import metrics_path_for

BATCHABLE = (Structure.REGISTER_FILE, Structure.SHARED_MEM,
             Structure.LOCAL_MEM)


def make_config(**overrides):
    kwargs = dict(benchmark="vectoradd", card="RTX2060",
                  structures=(Structure.REGISTER_FILE,),
                  runs_per_structure=6, seed=11, early_stop="off")
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


class TestEligibilityAndGrouping:
    def test_cache_structures_stay_solo(self):
        campaign = Campaign(make_config(
            structures=(Structure.L2_CACHE, Structure.REGISTER_FILE)))
        specs = campaign.plan()
        for spec in specs:
            eligible = batch_eligible(spec)
            assert eligible == (spec.structure
                                is Structure.REGISTER_FILE)

    def test_persistent_model_stays_solo(self):
        campaign = Campaign(make_config(fault_model="stuck_at_0"))
        specs = campaign.plan()
        assert specs and not any(batch_eligible(s) for s in specs)
        units = group_packs(specs, 4)
        assert all(kind == "solo" for kind, _ in units)

    def test_groups_chunk_to_batch_size(self):
        campaign = Campaign(make_config(runs_per_structure=10))
        specs = campaign.plan()
        units = group_packs(specs, 4)
        packs = [payload for kind, payload in units if kind == "pack"]
        solos = [payload for kind, payload in units if kind == "solo"]
        assert all(2 <= len(p) <= 4 for p in packs)
        # every spec appears exactly once across units
        keys = ([s.key for p in packs for s in p]
                + [s.key for s in solos])
        assert sorted(keys) == sorted(s.key for s in specs)

    def test_batch_one_never_packs(self):
        campaign = Campaign(make_config())
        executor = CampaignExecutor(batch=1)
        units = executor._build_units(campaign.plan())
        assert all(kind == "solo" for kind, _ in units)


class TestRecordParity:
    """batch=1 and batch=N produce canonically identical records at
    any jobs count, with and without prescreening, checkpointed."""

    @pytest.fixture(scope="class")
    def baselines(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("batch_parity")
        out = {}
        for early in ("off", "full"):
            cfg = self._config(root, early, batch=1, label="base")
            result = Campaign(cfg).run(jobs=1)
            out[early] = canonical_log_text(result.records)
        return root, out

    @staticmethod
    def _config(root, early, batch, label, jobs_label=""):
        log = root / f"{early}-{label}{jobs_label}.jsonl"
        return CampaignConfig(
            benchmark="vectoradd", card="RTX2060",
            structures=BATCHABLE, runs_per_structure=8, seed=7,
            early_stop=early, batch=batch, log_path=log,
            metrics=True, checkpoint_dir=root / "ckpts")

    @pytest.mark.parametrize("early", ["off", "full"])
    @pytest.mark.parametrize("batch", [4, 16])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_canonical_identity(self, baselines, early, batch, jobs):
        root, base = baselines
        cfg = self._config(root, early, batch,
                           label=f"b{batch}", jobs_label=f"-j{jobs}")
        result = Campaign(cfg).run(jobs=jobs)
        assert canonical_log_text(result.records) == base[early]

    def test_metrics_sidecar_batch_section(self, baselines):
        root, base = baselines
        cfg = self._config(root, "off", batch=4, label="metrics")
        Campaign(cfg).run(jobs=1)
        doc = json.loads(metrics_path_for(cfg.log_path).read_text())
        batch = doc["batch"]
        assert batch["packs"] >= 1
        assert batch["members"] == (batch["completed_in_pack"]
                                    + batch["converged"]
                                    + batch["peeled"]
                                    + batch["solo_fallback"])
        assert set(batch["peel_cycle_histogram"])
        if batch["lockstep_fraction"] is not None:
            assert 0.0 <= batch["lockstep_fraction"] <= 1.0


class TestPeelOff:
    """A member whose fault steers control flow peels to the solo path
    and still lands the exact solo record."""

    def test_branchy_kernel_peels_and_matches(self, tmp_path):
        # pathfinder's kernel branches on data the injected registers
        # feed, so register faults regularly diverge from column 0
        def run(batch):
            cfg = CampaignConfig(
                benchmark="pathfinder", card="RTX2060",
                structures=(Structure.REGISTER_FILE,),
                runs_per_structure=10, seed=3, early_stop="off",
                batch=batch)
            campaign = Campaign(cfg)
            specs = campaign.plan()
            executor = CampaignExecutor(batch=batch)
            records = executor.execute(specs)
            return records, executor.batch_stats

        solo_records, _ = run(1)
        batched_records, stats = run(8)
        assert (canonical_log_text(batched_records)
                == canonical_log_text(solo_records))
        assert stats["packs"] >= 1
        assert stats["peeled"] >= 1, stats
        assert stats["solo_fallback"] == 0, stats
        assert len(stats["peel_cycles"]) == stats["peeled"]

    def test_pack_falls_back_solo_on_internal_error(self, tmp_path,
                                                    monkeypatch):
        campaign = Campaign(make_config())
        specs = campaign.plan()
        units = group_packs(specs, 4)
        pack = next(payload for kind, payload in units
                    if kind == "pack")

        import repro.faults.batch_executor as bx

        def boom(specs):
            raise RuntimeError("injected pack failure")

        monkeypatch.setattr(bx, "_run_pack", boom)
        records, stats = execute_pack(pack)
        assert len(records) == len(pack)
        assert stats["solo_fallback"] == len(pack)
        solo = [bx.execute_run(spec) for spec in pack]
        assert (canonical_log_text(records)
                == canonical_log_text(solo))


class TestPlanGate:
    def test_plan_rejects_batched_persistent_model(self):
        cfg = make_config(fault_model="stuck_at_0", batch=2)
        with pytest.raises(ValueError, match="persistent"):
            Campaign(cfg).plan()

    def test_batch_must_be_positive(self):
        with pytest.raises(ValueError, match="batch"):
            make_config(batch=0)
        with pytest.raises(ValueError, match="batch"):
            CampaignExecutor(batch=0)

    def test_config_file_round_trip(self):
        from repro.faults.config_file import (dump_config,
                                              parse_config_text)

        cfg = make_config(batch=8)
        parsed = parse_config_text(dump_config(cfg))
        assert parsed.batch == 8
        default = parse_config_text(dump_config(make_config()))
        assert default.batch == 1
