"""Deferred cache-hook arm/drop state machine (paper section IV.B.4).

Complements the basic hook tests in ``test_cache.py`` with the
state-machine *edges*: sequences of events on one armed line (write
hit then read hit, invalidation while armed, flush transparency) and
the propagation tracer's view of each transition.
"""

import numpy as np

from repro.faults.hooks import arm_cache_hook
from repro.obs.propagation import PropagationTracer
from repro.sim.cache import Cache
from repro.sim.config import CacheGeometry


def make_cache(size=4 * 1024, line=128, assoc=2, tag_bits=57) -> Cache:
    return Cache("test", CacheGeometry(size, line_bytes=line, assoc=assoc),
                 tag_bits)


def line_data(byte: int, line=128) -> np.ndarray:
    return np.full(line, byte, dtype=np.uint8)


def make_tracer(cache, record):
    """A tracer watching the armed line, with a fixed-cycle fake GPU."""
    tracer = PropagationTracer(injection_cycle=100)

    class _Gpu:
        cycle = 100
        stats = None

    tracer.gpu = _Gpu()
    cache.propagation = tracer
    tracer.on_cache_site(record["cache"], record["line"], record["mode"],
                         record["valid"])
    return tracer


class TestArmDropEdges:
    def test_write_hit_then_read_hit_never_applies(self):
        # write hit drops the hook; the subsequent read hit must not
        # resurrect it
        cache = make_cache()
        cache.fill(0, line_data(0))
        record = arm_cache_hook(cache, 0, [57])
        assert record["valid"] is True
        cache.lookup(0, for_write=True)
        line = cache.lookup(0)  # read hit AFTER the drop
        assert line.armed is None
        assert cache.read_word(line, 0) == 0  # flip never applied

    def test_invalidation_while_armed_drops(self):
        cache = make_cache()
        cache.fill(0, line_data(0))
        arm_cache_hook(cache, 0, [57])
        cache.invalidate(0)
        # refill and read: the hook must be gone
        cache.fill(0, line_data(0))
        line = cache.lookup(0)
        assert line.armed is None
        assert cache.read_word(line, 0) == 0

    def test_invalidate_all_while_armed_drops(self):
        cache = make_cache()
        cache.fill(0, line_data(0))
        arm_cache_hook(cache, 0, [57])
        cache.invalidate_all()
        cache.fill(0, line_data(0))
        assert cache.read_word(cache.lookup(0), 0) == 0

    def test_rearm_after_drop_fires_again(self):
        cache = make_cache()
        cache.fill(0, line_data(0))
        arm_cache_hook(cache, 0, [57])
        cache.lookup(0, for_write=True)  # drop
        arm_cache_hook(cache, 0, [57])  # second injection, same line
        line = cache.lookup(0)
        assert cache.read_word(line, 0) == 1

    def test_read_hit_applies_only_once(self):
        cache = make_cache()
        cache.fill(0, line_data(0))
        arm_cache_hook(cache, 0, [57])
        assert cache.read_word(cache.lookup(0), 0) == 1
        assert cache.read_word(cache.lookup(0), 0) == 1  # no double flip


class TestTracerSeesTransitions:
    def test_read_hit_consumes(self):
        cache = make_cache()
        cache.fill(0, line_data(0))
        record = arm_cache_hook(cache, 0, [57])
        tracer = make_tracer(cache, record)
        cache.lookup(0)
        site = tracer.sites[0]
        assert site["fate"] == "consumed"
        assert site["fate_cycle"] == 100

    def test_write_hit_overwrites(self):
        cache = make_cache()
        cache.fill(0, line_data(0))
        record = arm_cache_hook(cache, 0, [57])
        tracer = make_tracer(cache, record)
        cache.lookup(0, for_write=True)
        assert tracer.sites[0]["fate"] == "overwritten"
        # a later read hit must not flip the fate back
        cache.lookup(0)
        assert tracer.sites[0]["fate"] == "overwritten"

    def test_invalidation_evicts(self):
        cache = make_cache()
        cache.fill(0, line_data(0))
        record = arm_cache_hook(cache, 0, [57])
        tracer = make_tracer(cache, record)
        cache.invalidate(0)
        assert tracer.sites[0]["fate"] == "evicted"

    def test_refill_evicts(self):
        cache = make_cache(assoc=1)
        set_stride = cache.geometry.num_sets * 128
        cache.fill(0, line_data(0))
        record = arm_cache_hook(cache, 0, [57])
        tracer = make_tracer(cache, record)
        cache.fill(set_stride, line_data(9))
        assert tracer.sites[0]["fate"] == "evicted"

    def test_invalid_line_site_is_never_touched(self):
        cache = make_cache()
        record = arm_cache_hook(cache, 3, [57])  # invalid line: no hook
        tracer = make_tracer(cache, record)
        site = tracer.sites[0]
        assert site["fate"] == "never_touched"
        assert site["valid"] is False
