"""Direct unit tests of the Warp and CTA state objects."""

import numpy as np
import pytest

from repro.sim.cta import CTA
from repro.sim.errors import MemoryViolation
from repro.sim.kernel import Kernel, KernelLaunch
from repro.sim.warp import StackEntry, Warp


class _FakeCTA:
    def on_warp_done(self):
        self.done_called = True


def make_warp(num_threads=32, num_regs=8, local_bytes=0):
    return Warp(0, num_threads, num_regs, local_bytes, cta=_FakeCTA(),
                age=0)


class TestWarpState:
    def test_initial_masks(self):
        warp = make_warp(num_threads=20)
        assert warp.active_mask().sum() == 20
        assert warp.live_count == 20
        assert list(warp.live_lanes()) == list(range(20))

    def test_pt_predicate_always_true(self):
        warp = make_warp()
        assert warp.preds[7].all()

    def test_stack_pop_on_empty_mask(self):
        warp = make_warp(num_threads=4)
        warp.exited[:] = True
        warp.normalize_stack()
        assert warp.done
        assert warp.cta.done_called

    def test_stack_pop_on_reconvergence(self):
        warp = make_warp()
        mask = np.ones(32, dtype=bool)
        warp.stack.append(StackEntry(7, mask.copy(), 7))  # pc == reconv
        warp.normalize_stack()
        assert len(warp.stack) == 1

    def test_done_transition_fires_once(self):
        warp = make_warp(num_threads=1)

        calls = []
        warp.cta.on_warp_done = lambda: calls.append(1)
        warp.exited[:] = True
        warp.normalize_stack()
        warp.normalize_stack()
        assert calls == [1]


class TestScoreboard:
    def make_inst(self, srcs=(), dsts=()):
        class FakeInst:
            def __init__(self, s, d):
                self._s, self._d = s, d

            def scoreboard_sets(self):
                return (tuple(self._s), tuple(self._d), (), ())

        return FakeInst(srcs, dsts)

    def test_ready_when_untracked(self):
        warp = make_warp()
        assert warp.operands_ready_at(self.make_inst(srcs=(1, 2))) == 0

    def test_raw_hazard(self):
        warp = make_warp()
        warp.mark_writes(self.make_inst(dsts=(3,)), completion_cycle=50)
        assert warp.operands_ready_at(self.make_inst(srcs=(3,))) == 50

    def test_waw_hazard(self):
        warp = make_warp()
        warp.mark_writes(self.make_inst(dsts=(3,)), completion_cycle=40)
        assert warp.operands_ready_at(self.make_inst(dsts=(3,))) == 40

    def test_sb_latest_fast_path(self):
        warp = make_warp()
        warp.mark_writes(self.make_inst(dsts=(3,)), completion_cycle=99)
        assert warp.sb_latest == 99
        warp.mark_writes(self.make_inst(dsts=(4,)), completion_cycle=50)
        assert warp.sb_latest == 99  # keeps the max


class TestWarpLocalMemory:
    def test_roundtrip(self):
        warp = make_warp(local_bytes=32)
        warp.local_write(5, 8, 0xABCD)
        assert warp.local_read(5, 8) == 0xABCD
        assert warp.local_read(4, 8) == 0  # thread-private

    def test_oob(self):
        warp = make_warp(local_bytes=32)
        with pytest.raises(MemoryViolation):
            warp.local_read(0, 32)

    def test_no_local_mem(self):
        warp = make_warp(local_bytes=0)
        with pytest.raises(MemoryViolation):
            warp.local_write(0, 0, 1)


class TestCTAUnit:
    def make_cta(self, block=(32, 1), smem=256):
        kernel = Kernel("k", "    EXIT", smem_bytes=smem)
        launch = KernelLaunch.create(kernel, grid=1, block=block)
        return CTA((0, 0), launch, core=None, age_base=0,
                   smem_ceiling=64 * 1024)

    def test_special_registers_2d(self):
        kernel = Kernel("k", "    EXIT")
        launch = KernelLaunch.create(kernel, grid=(2, 3), block=(8, 4))
        cta = CTA((1, 2), launch, core=None, age_base=0,
                  smem_ceiling=64 * 1024)
        warp = cta.warps[0]
        assert warp.sregs["SR_CTAID_X"][0] == 1
        assert warp.sregs["SR_CTAID_Y"][0] == 2
        assert warp.sregs["SR_NTID_X"][0] == 8
        assert warp.sregs["SR_TID_X"][9] == 1   # linear 9 -> (1, 1)
        assert warp.sregs["SR_TID_Y"][9] == 1

    def test_smem_roundtrip(self):
        cta = self.make_cta()
        cta.smem_write(12, 77)
        assert cta.smem_read(12) == 77

    def test_smem_misaligned(self):
        cta = self.make_cta()
        with pytest.raises(MemoryViolation, match="misaligned"):
            cta.smem_read(6)

    def test_smem_alias_within_window(self):
        cta = self.make_cta(smem=256)
        cta.smem_write(0, 42)
        assert cta.smem_read(256) == 42  # wraps into own allocation

    def test_smem_beyond_window_faults(self):
        cta = self.make_cta()
        with pytest.raises(MemoryViolation):
            cta.smem_read(64 * 1024)

    def test_barrier_release_all_live(self):
        cta = self.make_cta(block=(64, 1))
        for warp in cta.warps:
            warp.at_barrier = True
        assert cta.try_release_barrier()
        assert not any(w.at_barrier for w in cta.warps)

    def test_barrier_waits_for_stragglers(self):
        cta = self.make_cta(block=(64, 1))
        cta.warps[0].at_barrier = True
        assert not cta.try_release_barrier()
        assert cta.warps[0].at_barrier
