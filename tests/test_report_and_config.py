"""Report rendering and gpgpusim.config-style option files."""

import pytest

from repro.analysis.report import (TABLE3_ROWS, bar_chart, format_kb,
                                   pie_text, render_table, stacked_chart)
from repro.faults.campaign import CampaignConfig
from repro.faults.config_file import (dump_config, load_config,
                                      parse_config_text)
from repro.faults.mask import MultiBitMode
from repro.faults.targets import Structure


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(("a", "bbbb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_table3_mentions_this_work(self):
        assert TABLE3_ROWS[-1][0] == "This Work"
        assert TABLE3_ROWS[-1][2] == "4.0"

    def test_bar_chart(self):
        text = bar_chart({"VA": 0.5, "KM": 1.0})
        assert "KM" in text and "#" in text

    def test_bar_chart_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_stacked_chart_legend(self):
        text = stacked_chart({"VA": {"SDC": 0.3, "Crash": 0.1}},
                             ["SDC", "Crash"])
        assert "legend:" in text and "0.4" in text

    def test_pie_text_sorted(self):
        text = pie_text({"rf": 0.7, "l2": 0.3})
        assert text.index("rf") < text.index("l2")

    def test_pie_text_empty(self):
        assert "masked" in pie_text({})

    def test_format_kb(self):
        assert format_kb(512.0) == "512.00 KB"
        assert format_kb(2048.0) == "2.00 MB"


class TestConfigFile:
    MINIMAL = "-gpufi_benchmark vectoradd\n-gpufi_card RTX2060\n"

    def test_minimal(self):
        config = parse_config_text(self.MINIMAL)
        assert config.benchmark == "vectoradd"
        assert config.card == "RTX2060"
        assert config.structures is None

    def test_full_options(self):
        text = self.MINIMAL + """
            -gpufi_components register_file,l2_cache
            -gpufi_runs 250
            -gpufi_bits_per_fault 3
            -gpufi_multibit_mode adjacent
            -gpufi_warp_level 1
            -gpufi_blocks 2
            -gpufi_cores 2
            -gpufi_kernels Fan1,Fan2
            -gpufi_seed 99
            -gpufi_scheduler lrr
            -gpufi_cache_hook_mode true
            -gpufi_log /tmp/x.jsonl
        """
        config = parse_config_text(text)
        assert config.structures == (Structure.REGISTER_FILE,
                                     Structure.L2_CACHE)
        assert config.runs_per_structure == 250
        assert config.bits_per_fault == 3
        assert config.multibit_mode is MultiBitMode.ADJACENT
        assert config.warp_level and config.cache_hook_mode
        assert config.kernels == ("Fan1", "Fan2")
        assert config.scheduler_policy == "lrr"

    def test_comments_and_foreign_options_ignored(self):
        text = ("# gpgpusim options\n"
                "-gpgpu_n_clusters 30\n" + self.MINIMAL)
        config = parse_config_text(text)
        assert config.benchmark == "vectoradd"

    def test_missing_required(self):
        with pytest.raises(ValueError, match="required"):
            parse_config_text("-gpufi_card RTX2060\n")

    def test_unknown_option(self):
        with pytest.raises(ValueError, match="unknown gpufi"):
            parse_config_text(self.MINIMAL + "-gpufi_bogus 1\n")

    def test_roundtrip(self, tmp_path):
        config = CampaignConfig(
            benchmark="hotspot", card="GTXTitan",
            structures=(Structure.SHARED_MEM,), runs_per_structure=5,
            bits_per_fault=2, warp_level=True, seed=3)
        path = tmp_path / "gpufi.config"
        path.write_text(dump_config(config))
        loaded = load_config(path)
        assert loaded.benchmark == config.benchmark
        assert loaded.structures == config.structures
        assert loaded.bits_per_fault == 2
        assert loaded.warp_level


class TestMarkdownReport:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.faults.campaign import Campaign, CampaignConfig

        return Campaign(CampaignConfig(
            benchmark="vectoradd", card="RTX2060",
            structures=(Structure.REGISTER_FILE, Structure.L2_CACHE),
            runs_per_structure=5, seed=21)).run()

    def test_contains_sections(self, result):
        from repro.analysis.markdown import render_markdown

        text = render_markdown(result)
        assert "# gpuFI-4 campaign: vectoradd on RTX2060" in text
        assert "## Kernel profile" in text
        assert "## Fault effects" in text
        assert "wAVF (eq. 3)" in text
        assert "register_file" in text

    def test_custom_title(self, result):
        from repro.analysis.markdown import render_markdown

        assert render_markdown(result,
                               title="My Report").startswith("# My Report")

    def test_tables_are_well_formed(self, result):
        from repro.analysis.markdown import render_markdown

        for line in render_markdown(result).splitlines():
            if line.startswith("|"):
                assert line.endswith("|")
