"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.cards import rtx_2060
from repro.sim.config import CacheGeometry, GPUConfig
from repro.sim.device import Device
from repro.sim.kernel import Kernel


@pytest.fixture
def rtx() -> GPUConfig:
    """The RTX 2060 card model."""
    return rtx_2060()


@pytest.fixture
def device() -> Device:
    """A fresh RTX 2060 device."""
    return Device("RTX2060")


def tiny_config(**overrides) -> GPUConfig:
    """A small config for focused microarchitecture tests."""
    defaults = dict(
        name="Tiny",
        architecture="Test",
        num_sms=2,
        max_threads_per_sm=256,
        max_ctas_per_sm=4,
        registers_per_sm=4096,
        shared_mem_per_sm=16 * 1024,
        num_schedulers_per_sm=2,
        l1d=CacheGeometry(4 * 1024, assoc=2),
        l1t=CacheGeometry(4 * 1024, assoc=2),
        l2=CacheGeometry(32 * 1024, assoc=4),
        l2_banks=2,
        global_mem_bytes=1024 * 1024,
    )
    defaults.update(overrides)
    return GPUConfig(**defaults)


def run_lanes(source: str, num_threads: int = 32, params=(),
              device: Device = None, smem_bytes: int = 0,
              local_bytes: int = 0, block=None, grid: int = 1):
    """Assemble + run a snippet on one (or more) CTAs; returns the device.

    The kernel must store its observable results to global memory.
    """
    dev = device or Device("RTX2060")
    kernel = Kernel("snippet", source, num_params=len(params),
                    smem_bytes=smem_bytes, local_bytes=local_bytes)
    dev.launch(kernel, grid=grid, block=block or num_threads, params=params)
    return dev


def as_f32_bits(value: float) -> int:
    """fp32 bit pattern of a Python float."""
    return int(np.float32(value).view(np.uint32))
