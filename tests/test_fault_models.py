"""FaultModel strategy API: registry, stuck-at persistence, control units.

Covers the redesigned injection interface:

- the model registry and the unified ``fault_model`` surface (CLI flag,
  config file option, :class:`CampaignConfig` field),
- byte-identity of transient campaigns against a pre-refactor golden
  log (``tests/data/golden_transient_vectoradd.jsonl``),
- stuck-at persistence (re-assertion after overwrite) and its
  soundness interactions with liveness pre-screening,
- the control-unit structures (SIMT stack, scoreboard) end to end.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.faults import models as models_mod
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.config_file import dump_config, parse_config_text
from repro.faults.injector import Injector
from repro.faults.mask import FaultMask
from repro.faults.models import (FaultModel, get_model, model_names,
                                 register_model)
from repro.faults.parser import aggregate_by_model, load_records
from repro.faults.targets import CONTROL_STRUCTURES, Structure, chip_bits
from repro.sim.cards import get_card
from repro.sim.device import Device, RunOptions
from repro.sim.kernel import Kernel

GOLDEN = "tests/data/golden_transient_vectoradd.jsonl"

# R10 is rewritten on every loop iteration, so a *transient* flip in it
# mid-loop is dead-on-arrival (liveness calls the site dead), while a
# *stuck-at* fault re-asserts after each MOV and survives to the store
OVERWRITE = Kernel("overwrite_spin", """
    S2R R0, SR_TID_X
    SHL R3, R0, 2
    LDC R8, c[0x0]
    IADD R9, R8, R3
    MOV R11, 0
loop:
    MOV R10, 0x5555
    IADD R11, R11, 1
    ISETP.LT.AND P0, PT, R11, 200, PT
@P0 BRA loop
    STG [R9], R10
    EXIT
""", num_params=1)


def small_campaign(tmp_path=None, **overrides):
    kwargs = dict(benchmark="vectoradd", card="RTX2060",
                  structures=(Structure.REGISTER_FILE,),
                  runs_per_structure=3, seed=3, early_stop="full")
    kwargs.update(overrides)
    if tmp_path is not None:
        kwargs["log_path"] = tmp_path / "log.jsonl"
    return CampaignConfig(**kwargs)


def run_overwrite(model, bits=(0, 2)):
    mask = FaultMask(structure=Structure.REGISTER_FILE, cycle=250,
                     entry_index=10, bit_offsets=bits, seed=42,
                     warp_level=True, fault_model=model)
    injector = Injector([mask])
    dev = Device("RTX2060", RunOptions(injector=injector))
    out = dev.malloc(4 * 32)
    dev.launch(OVERWRITE, grid=1, block=32, params=[out])
    return injector, dev.read_array(out, (32,), np.uint32)


class TestRegistry:
    def test_builtin_models_registered(self):
        assert {"transient", "stuck_at_0", "stuck_at_1",
                "control"} <= set(model_names())

    def test_unknown_model_lists_registered(self):
        with pytest.raises(ValueError, match="unknown fault model 'nope'"):
            get_model("nope")
        with pytest.raises(ValueError, match="transient"):
            get_model("nope")

    def test_register_custom_model(self):
        class Sticky(FaultModel):
            name = "sticky_test"
            persistent = True

        try:
            register_model(Sticky)
            assert get_model("sticky_test") is Sticky
            assert "sticky_test" in model_names()
        finally:
            models_mod._REGISTRY.pop("sticky_test", None)

    def test_model_semantics(self):
        assert get_model("stuck_at_0").apply_word(0b1111, 0b0101) == 0b1010
        assert get_model("stuck_at_1").apply_word(0b0000, 0b0101) == 0b0101
        assert get_model("transient").apply_word(0b1100, 0b0101) == 0b1001
        assert get_model("stuck_at_0").cache_op == "clear"
        assert get_model("stuck_at_1").cache_op == "set"
        assert get_model("transient").cache_op == "xor"


class TestGoldenByteIdentity:
    """Transient campaigns must be byte-identical to the pre-refactor
    schema: same records, same key order, no ``fault_model`` noise."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_matches_pre_refactor_golden(self, tmp_path, jobs):
        golden = open(GOLDEN, encoding="utf-8").read().splitlines()
        cfg = CampaignConfig(
            benchmark="vectoradd", card="RTX2060",
            structures=(Structure.REGISTER_FILE, Structure.SHARED_MEM,
                        Structure.L2_CACHE),
            runs_per_structure=4, seed=7, bits_per_fault=3,
            checkpoint_dir=tmp_path / "ckpt", early_stop="full")
        campaign = Campaign(cfg)
        records = campaign.execute(campaign.plan(), jobs=jobs)
        assert [json.dumps(r) for r in records] == golden

    def test_golden_exercises_the_interesting_paths(self):
        records = load_records(GOLDEN)
        assert len(records) == 12
        assert any(r["prescreened"] for r in records)
        assert any(r["effect"] == "Crash" for r in records)
        assert all("fault_model" not in r for r in records)


class TestUnifiedSurface:
    """--fault-model, -gpufi_fault_model and CampaignConfig.fault_model
    are one option: same names, same plans, same rejection message."""

    def test_config_file_round_trip(self):
        cfg = small_campaign(fault_model="stuck_at_1")
        assert "-gpufi_fault_model stuck_at_1" in dump_config(cfg)
        assert parse_config_text(dump_config(cfg)) == cfg

    def test_config_file_default_is_transient(self):
        cfg = parse_config_text("-gpufi_benchmark vectoradd\n"
                                "-gpufi_card RTX2060\n")
        assert cfg.fault_model == "transient"

    def test_identical_plans_across_surfaces(self):
        direct = small_campaign(fault_model="stuck_at_0")
        from_file = parse_config_text(dump_config(direct))
        assert Campaign(from_file).plan() == Campaign(direct).plan()

    def test_campaign_config_rejects_unknown(self):
        with pytest.raises(ValueError, match="registered models"):
            small_campaign(fault_model="nope")

    def test_config_file_rejects_unknown(self):
        with pytest.raises(ValueError, match="registered models"):
            parse_config_text("-gpufi_benchmark vectoradd\n"
                              "-gpufi_card RTX2060\n"
                              "-gpufi_fault_model nope\n")

    def test_cli_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["campaign", "--benchmark", "vectoradd",
                  "--card", "RTX2060", "--fault-model", "nope",
                  "--runs", "1"])
        assert "registered models" in str(err.value)

    def test_cli_flag_reaches_the_log(self, tmp_path):
        log = tmp_path / "log.jsonl"
        assert main(["campaign", "--benchmark", "vectoradd",
                     "--card", "RTX2060", "--structures", "register_file",
                     "--fault-model", "stuck_at_1", "--runs", "2",
                     "--seed", "3", "--log", str(log)]) == 0
        records = load_records(log)
        assert [r["fault_model"] for r in records] == ["stuck_at_1"] * 2
        assert all(r["mask"]["fault_model"] == "stuck_at_1"
                   for r in records)


class TestMaskRoundTrip:
    def test_fault_model_round_trips(self):
        mask = FaultMask(structure=Structure.REGISTER_FILE, cycle=10,
                         entry_index=2, bit_offsets=(1,), seed=5,
                         fault_model="stuck_at_0")
        again = FaultMask.from_dict(mask.to_dict())
        assert again == mask
        assert again.fault_model == "stuck_at_0"

    def test_transient_dict_has_no_fault_model_key(self):
        # byte-compat with pre-strategy logs: the default is elided
        mask = FaultMask(structure=Structure.REGISTER_FILE, cycle=10,
                         entry_index=2, bit_offsets=(1,), seed=5)
        assert "fault_model" not in mask.to_dict()

    def test_unknown_keys_survive_the_round_trip(self):
        payload = dict(structure="register_file", cycle=10, entry_index=2,
                       bit_offsets=[1], warp_level=False, n_blocks=1,
                       n_cores=1, seed=5, fault_model="stuck_at_1",
                       future_field="kept", vendor={"x": 1})
        mask = FaultMask.from_dict(payload)
        out = mask.to_dict()
        assert out["future_field"] == "kept"
        assert out["vendor"] == {"x": 1}
        assert out["fault_model"] == "stuck_at_1"


class TestDeprecatedConstructor:
    def test_masks_kwarg_warns(self):
        mask = FaultMask(structure=Structure.REGISTER_FILE, cycle=10,
                         entry_index=2, bit_offsets=(1,), seed=5)
        with pytest.warns(DeprecationWarning,
                          match=r"Injector\(masks=\.\.\.\)"):
            injector = Injector(masks=[mask])
        assert injector.due_cycle() == 10

    def test_both_forms_is_an_error(self):
        with pytest.raises(TypeError):
            Injector([], masks=[])


class TestStuckAtPersistence:
    def test_reasserted_after_overwrite(self):
        # liveness would call R10 dead at cycle 250 (rewritten before
        # any read), and indeed the transient flip vanishes -- but the
        # stuck-at fault re-asserts after every MOV and reaches the
        # store, so the "dead" site is NOT dead under stuck-at
        inj_t, out_t = run_overwrite("transient")
        assert (out_t == 0x5555).all()
        assert "reasserted" not in inj_t.log[0]

        inj_s, out_s = run_overwrite("stuck_at_0")
        assert (out_s == (0x5555 & ~0b101)).all()
        assert inj_s.log[0]["reasserted"] > 0

    def test_stuck_at_1_sets_bits(self):
        # bits 1 and 3 are clear in 0x5555, so every loop-iteration MOV
        # clears them again and the model must re-assert them
        inj, out = run_overwrite("stuck_at_1", bits=(1, 3))
        assert (out == (0x5555 | 0b1010)).all()
        assert inj.log[0]["reasserted"] > 0

    def test_prescreen_disabled_for_persistent_models(self, tmp_path):
        base = dict(tmp_path=None, runs_per_structure=4, seed=7,
                    bits_per_fault=3, checkpoint_dir=tmp_path / "ckpt")
        transient = Campaign(small_campaign(**base)).plan()
        assert any(s.prescreened for s in transient)
        stuck = Campaign(small_campaign(fault_model="stuck_at_0",
                                        **base)).plan()
        assert not any(s.prescreened for s in stuck)

    def test_cache_hook_mode_rejected_for_persistent(self):
        cfg = small_campaign(fault_model="stuck_at_1",
                             structures=(Structure.L2_CACHE,),
                             cache_hook_mode=True)
        with pytest.raises(ValueError, match="cache_hook_mode"):
            Campaign(cfg).plan()

    def test_end_to_end_with_report_breakdown(self, tmp_path, capsys):
        cfg = small_campaign(tmp_path, fault_model="stuck_at_1",
                             structures=(Structure.REGISTER_FILE,
                                         Structure.L2_CACHE))
        result = Campaign(cfg).run(jobs=2)
        records = load_records(tmp_path / "log.jsonl")
        assert len(records) == 6
        assert {r["fault_model"] for r in records} == {"stuck_at_1"}
        by_model = aggregate_by_model(records)
        assert list(by_model) == ["stuck_at_1"]
        assert by_model["stuck_at_1"] == result.counts
        assert main(["report", str(tmp_path / "log.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "fault model: stuck_at_1" in out


class TestControlStructures:
    def test_control_geometry(self):
        card = get_card("RTX2060")
        for structure in CONTROL_STRUCTURES:
            assert structure.is_control
            assert chip_bits(structure, card) > 0

    def test_control_model_defaults_to_control_structures(self):
        cfg = small_campaign(structures=None, fault_model="control")
        assert tuple(cfg.resolved_structures()) == CONTROL_STRUCTURES

    def test_end_to_end_deterministic(self, tmp_path):
        cfg = small_campaign(fault_model="control", structures=None,
                             runs_per_structure=3)
        a = Campaign(cfg).execute(Campaign(cfg).plan(), jobs=1)
        b = Campaign(cfg).execute(Campaign(cfg).plan(), jobs=2)
        assert a == b
        structures = {r["structure"] for r in a}
        assert structures == {"simt_stack", "scoreboard"}
        targets = {inj["target"] for r in a
                   for inj in r.get("injections") or ()}
        assert "warp" in targets

    def test_explain_run_narrates_control_site(self, tmp_path, capsys):
        cfg = small_campaign(tmp_path, fault_model="control",
                             structures=(Structure.SIMT_STACK,),
                             propagation=True)
        Campaign(cfg).run(jobs=1)
        assert main(["explain-run", str(tmp_path / "log.jsonl"),
                     "vectorAdd/simt_stack/0"]) == 0
        out = capsys.readouterr().out
        assert "fault model: control" in out

    def test_explain_run_narrates_persistent_fate(self, tmp_path, capsys):
        cfg = small_campaign(tmp_path, fault_model="stuck_at_1",
                             propagation=True)
        Campaign(cfg).run(jobs=1)
        assert main(["explain-run", str(tmp_path / "log.jsonl"),
                     "vectorAdd/register_file/0"]) == 0
        out = capsys.readouterr().out
        assert "fault model: stuck_at_1" in out
        assert "persists" in out
        assert "stuck" in out


class TestMixedModelAggregation:
    def test_transient_orders_first(self):
        records = [
            {"kernel": "k", "structure": "register_file",
             "effect": "Masked", "fault_model": "stuck_at_0"},
            {"kernel": "k", "structure": "register_file",
             "effect": "SDC"},
            {"kernel": "k", "structure": "register_file",
             "effect": "Crash", "fault_model": "control"},
        ]
        assert list(aggregate_by_model(records)) == [
            "transient", "control", "stuck_at_0"]
