"""Every example script must run cleanly (with small arguments)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["8"]),
    ("custom_kernel.py", []),
    ("cache_fault_anatomy.py", []),
    ("multibit_study.py", ["4"]),
    ("multi_structure.py", ["3"]),
    ("bit_sensitivity.py", ["8"]),
    ("performance_effect.py", ["6"]),
    ("compare_generations.py", ["2"]),
]


@pytest.mark.parametrize("script,args", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must produce output"


def test_all_examples_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == {c[0] for c in CASES}
